// Package guidesort implements Guidesort — the guided mergesort of
// Hagerup ("Guidesort: Simpler Optimal Deterministic Sorting for the
// Parallel Disk Model", PAPERS.md) — on the same simulated disk arrays the
// rest of this repository runs on.
//
// Plain striped merge sort keeps its reads full-width by treating the D
// disks as one logical disk of DB-record blocks, which collapses the merge
// arity from Θ(M/B) to Θ(M/(DB)) and costs the Θ(log(M/B)/log(M/DB))
// extra factor of experiment E11. Guidesort restores the high arity while
// staying deterministic and (mostly) full-width: while each sorted run is
// still in memory it records a sidecar of *block minima* (the first record
// of every B-record block), and before each merge it builds a **guide** —
// the merged, deterministically thinned sequence of all participating
// runs' block minima. The guide predicts, exactly and in advance, the
// order in which the merge will consume blocks, so a windowed prefetcher
// can stream one block per disk per I/O in guide order. A block that the
// merge demands before its scheduled fetch (possible only when the
// prefetch window is exhausted by skew) is demand-fetched with a
// single-block I/O, so progress is never blocked; the count of such
// fallbacks is reported in Metrics.DemandFetches.
//
// The phases map one-to-one onto the distribution-sort skeleton of the
// Nodine–Vitter paper this repository reproduces: run formation is the
// memoryload base case, the guide plays the role of the partitioning
// elements (a deterministically refined sample of the data that steers all
// data movement), and the guided merge is the distribution pass run in
// reverse — see DESIGN.md §5g.
//
// The sorter has first-class parity with the Balance Sort engine on every
// robustness axis: its complete state between commits is the serializable
// State (run formation and each merge are the commit points), it honors
// context cancellation and crash injection through the same core.Abort
// panic protocol, it charges every buffer against the array's MemTracker,
// and it traces its phases through the obs layer.
//
// With Config.Striped the same machinery degrades to the classic striped
// merge (arity M/(2DB), stripe-row reads, no guide) — the file-backed
// "stripedmerge" engine inherits journaling and resume for free.
package guidesort

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"balancesort/internal/core"
	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// Config tunes one Guidesort instance.
type Config struct {
	// P is the PRAM processor count for internal-work accounting.
	P int
	// Striped switches to classic striped-merge behavior: arity M/(2DB),
	// sequential stripe-row reads, no guide and no minima sidecars.
	Striped bool
	// NoRadix sorts memoryloads with the comparison sort instead of the
	// LSD radix sort (the radix base case is the default).
	NoRadix bool
	// Context, when non-nil, cancels the sort between memoryloads, fetch
	// rounds, and output flushes (panics core.Abort, like the core sorter).
	Context context.Context
	// Checkpoint, when non-nil, is called with the complete resumable
	// state after every formed run and every completed merge.
	Checkpoint func(State) error
	// CrashAfterCommits > 0 injects a crash immediately before the k-th
	// Checkpoint call (the recovery tests' kill switch).
	CrashAfterCommits int
	// Trace receives phase spans; nil is a no-op.
	Trace *obs.Tracer
}

// Run is one sorted run on the array: N records striped at block offset
// Off, plus (in guided mode) a sidecar region holding its block minima so
// a resumed sort never rescans the run to rebuild a guide.
type Run struct {
	Off   int `json:"off"`
	N     int `json:"n"`
	Level int `json:"level"`
	// MinOff/MinN locate the block-minima sidecar (MinN = ceil(N/B)
	// records). Zero MinN means no sidecar (striped mode, or the final
	// merge's output, which no later merge will consume).
	MinOff int `json:"min_off,omitempty"`
	MinN   int `json:"min_n,omitempty"`
}

// State is the complete resumable state of a sort between commits: which
// prefix of the input region has been formed into runs, and the pending
// run queue (merges consume from the front and append at the back).
type State struct {
	InputOff int     `json:"input_off"`
	InputN   int     `json:"input_n"`
	InputPos int     `json:"input_pos"`
	Runs     []Run   `json:"runs"`
	Metrics  Metrics `json:"metrics"`
}

// Metrics reports what one sort did, in model units. Counters are
// cumulative across crash/resume (the checkpointed values are the prior).
type Metrics struct {
	N          int   `json:"n"`
	IOs        int64 `json:"ios"`
	ReadIOs    int64 `json:"read_ios"`
	WriteIOs   int64 `json:"write_ios"`
	BlocksRead int64 `json:"blocks_read"`
	BlocksWrit int64 `json:"blocks_writ"`

	PRAMTime float64 `json:"pram_time"`
	PRAMWork float64 `json:"pram_work"`

	// Passes counts completed merge operations; Depth is the deepest merge
	// level (0 = the input fit in one memoryload).
	Passes int `json:"passes"`
	Depth  int `json:"depth"`
	// MergeArity is the configured maximum merge fan-in.
	MergeArity int `json:"merge_arity"`
	// GuidePeak is the largest guide built (entries, after thinning).
	GuidePeak int `json:"guide_peak"`
	// DemandFetches counts blocks the merge needed before their scheduled
	// prefetch — each one is a lone, sub-full-width I/O.
	DemandFetches int64 `json:"demand_fetches"`
	MemPeak       int   `json:"mem_peak"`
}

// Sorter runs Guidesort on one array. Not safe for concurrent use.
type Sorter struct {
	arr *pdm.Array
	cpu *pram.Machine
	cfg Config

	memload  int // records per formation memoryload
	arity    int // max merge fan-in
	window   int // prefetch cache capacity in blocks (guided mode)
	guideCap int // max guide entries before thinning (guided mode)

	met     Metrics
	prior   Metrics
	commits int
}

// NewSorter builds a sorter for the array. Requires 4·D·B ≤ M (the same
// headroom rule as the core sorter: buffers for every phase must coexist).
func NewSorter(arr *pdm.Array, cfg Config) *Sorter {
	p := arr.Params()
	if 4*p.D*p.B > p.M {
		panic(fmt.Sprintf("guidesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M))
	}
	if cfg.P < 1 {
		cfg.P = 1
	}
	s := &Sorter{arr: arr, cpu: pram.New(cfg.P), cfg: cfg}
	s.memload = (p.M / 2 / p.B) * p.B
	if !cfg.Striped && !GuidedFits(p) {
		// M is too small to host the guide, the prefetch cache, and the
		// merge buffers side by side; degrade to the striped discipline
		// (always affordable given 4·D·B ≤ M).
		s.cfg.Striped = true
	}
	if s.cfg.Striped {
		// One stripe-row buffer (DB records) per run plus the output row.
		s.arity = p.M / (2 * p.D * p.B)
	} else {
		s.arity, s.window, s.guideCap = guidedBudget(p)
	}
	if s.arity < 2 {
		s.arity = 2
	}
	s.met.MergeArity = s.arity
	return s
}

// guidedBudget sizes the guided merge's residents: the fan-in (one current
// block per run), the prefetch cache, and the guide, targeting M/8 of
// memory each and leaving room for the output row (DB), the minima buffer
// (B), and the guide's per-run rounding slack (one entry per run).
func guidedBudget(p pdm.Params) (arity, window, guideCap int) {
	arity = p.M / (8 * p.B)
	if arity < 2 {
		arity = 2
	}
	window = p.M / (8 * p.B)
	if window < 1 {
		window = 1
	}
	guideCap = p.M / 8
	if guideCap < 8 {
		guideCap = 8
	}
	return arity, window, guideCap
}

// GuidedFits reports whether the guided merge's worst-case residents fit
// in M for this geometry. When false, NewSorter (and the planner) fall
// back to the striped discipline.
func GuidedFits(p pdm.Params) bool {
	arity, window, guideCap := guidedBudget(p)
	need := arity*p.B + window*p.B + p.D*p.B + p.B + guideCap + arity
	return need <= p.M
}

// Metrics returns the cumulative metrics of the last Sort/Resume call.
func (s *Sorter) Metrics() Metrics { return s.met }

// Sort sorts the n records striped at block offset off and returns the
// output region. The input region is left intact.
func (s *Sorter) Sort(off, n int) core.Region {
	return s.Resume(State{InputOff: off, InputN: n, Metrics: Metrics{N: n, MergeArity: s.arity}})
}

// Resume continues a sort from a checkpointed State (or starts one, given
// a fresh State). Run formation finishes first, then the run queue merges
// down to a single region; a commit lands after every step.
func (s *Sorter) Resume(st State) core.Region {
	s.prior = st.Metrics
	s.prior.MergeArity = s.arity
	s.met = s.prior
	s.arr.ResetStats()
	s.cpu.Reset()
	s.commits = 0

	runs := append([]Run(nil), st.Runs...)

	// Phase 1: run formation over the unformed suffix of the input.
	for st.InputPos < st.InputN {
		s.checkCtx()
		want := s.memload
		if st.InputN-st.InputPos < want {
			want = st.InputN - st.InputPos
		}
		sp := s.cfg.Trace.Begin("sort", "guide-run-formation", 0)
		run := s.formRun(st.InputOff, st.InputPos, want)
		sp.End(obs.Attr{Key: "n", Val: int64(want)})
		runs = append(runs, run)
		st.InputPos += want
		st.Runs = runs
		s.commit(&st)
	}

	// Phase 2: merge the run queue front-to-back until one run remains.
	for len(runs) > 1 {
		s.checkCtx()
		k := s.arity
		if k > len(runs) {
			k = len(runs)
		}
		group := runs[:k]
		final := k == len(runs) // the final merge's output needs no sidecar
		sp := s.cfg.Trace.Begin("sort", s.mergeSpanName(), 0)
		merged := s.merge(sp, group, final)
		sp.End(obs.Attr{Key: "n", Val: int64(merged.N)}, obs.Attr{Key: "arity", Val: int64(k)})
		runs = append(append([]Run(nil), runs[k:]...), merged)
		s.met.Passes++
		if merged.Level > s.met.Depth {
			s.met.Depth = merged.Level
		}
		st.Runs = runs
		s.commit(&st)
	}

	s.refreshMetrics()
	if len(runs) == 0 {
		return core.Region{}
	}
	return core.Region{Off: runs[0].Off, N: runs[0].N}
}

func (s *Sorter) mergeSpanName() string {
	if s.cfg.Striped {
		return "striped-merge"
	}
	return "guided-merge"
}

// checkCtx panics a core.Abort if the configured context is done.
func (s *Sorter) checkCtx() {
	if s.cfg.Context == nil {
		return
	}
	if err := s.cfg.Context.Err(); err != nil {
		panic(core.Abort{Err: err})
	}
}

// commit refreshes the cumulative metrics and lands one checkpoint,
// injecting the configured crash immediately before the k-th commit.
func (s *Sorter) commit(st *State) {
	s.refreshMetrics()
	st.Metrics = s.met
	s.commits++
	if s.cfg.CrashAfterCommits > 0 && s.commits == s.cfg.CrashAfterCommits {
		panic(core.Abort{Err: core.ErrInjectedCrash})
	}
	if s.cfg.Checkpoint != nil {
		if err := s.cfg.Checkpoint(*st); err != nil {
			panic(core.Abort{Err: err})
		}
	}
}

// refreshMetrics folds this run's counters on top of the checkpointed
// prior ones, so Metrics stays cumulative across crash/resume.
func (s *Sorter) refreshMetrics() {
	st := s.arr.Stats()
	s.met.IOs = s.prior.IOs + st.IOs
	s.met.ReadIOs = s.prior.ReadIOs + st.ReadIOs
	s.met.WriteIOs = s.prior.WriteIOs + st.WriteIOs
	s.met.BlocksRead = s.prior.BlocksRead + st.BlocksRead
	s.met.BlocksWrit = s.prior.BlocksWrit + st.BlocksWritten
	s.met.PRAMTime = s.prior.PRAMTime + s.cpu.Time()
	s.met.PRAMWork = s.prior.PRAMWork + s.cpu.Work()
	if peak := s.arr.Mem.Peak(); peak > s.prior.MemPeak {
		s.met.MemPeak = peak
	} else {
		s.met.MemPeak = s.prior.MemPeak
	}
}

// internalSort sorts one memoryload with the configured base case.
func (s *Sorter) internalSort(rs []record.Record) {
	if s.cfg.NoRadix {
		s.cpu.Sort(rs)
		return
	}
	s.cpu.SortRadix(rs)
}

// formRun reads want records at record index pos of the input region,
// sorts them in memory, and writes them back as a fresh level-0 run with
// (in guided mode) its block-minima sidecar.
func (s *Sorter) formRun(inOff, pos, want int) Run {
	p := s.arr.Params()
	s.arr.Mem.Use(want)
	buf := make([]record.Record, want)
	s.readAligned(inOff, pos, buf)
	s.internalSort(buf)
	outOff := s.allocStripe(want)
	s.writeAligned(outOff, 0, buf)
	run := Run{Off: outOff, N: want}
	if !s.cfg.Striped {
		nmins := (want + p.B - 1) / p.B
		s.arr.Mem.Use(nmins)
		mins := make([]record.Record, 0, nmins)
		for k := 0; k < want; k += p.B {
			mins = append(mins, buf[k])
		}
		minOff := s.allocStripe(len(mins))
		s.writeAligned(minOff, 0, mins)
		run.MinOff, run.MinN = minOff, len(mins)
		s.arr.Mem.Release(nmins)
	}
	s.arr.Mem.Release(want)
	return run
}

// merge merges the group of runs into one fresh run. The output gets a
// block-minima sidecar unless final (no later merge will consume it).
// parent is the enclosing merge span; sub-phase spans (guide-build) are
// recorded as its children.
func (s *Sorter) merge(parent obs.Active, group []Run, final bool) Run {
	total := 0
	level := 0
	for _, r := range group {
		total += r.N
		if r.Level >= level {
			level = r.Level + 1
		}
	}
	if s.cfg.Striped {
		return s.mergeStriped(group, total, level)
	}
	return s.mergeGuided(parent, group, total, level, final)
}

// ---------------------------------------------------------------------------
// Guided merge.

// gEnt is one guide entry: the minimum record of a span of `span`
// consecutive blocks of run `run` starting at block index `block`. With no
// thinning every span is 1 block; thinning doubles spans until the guide
// fits its memory budget.
type gEnt struct {
	key   record.Record
	run   int32
	block int32
	span  int32
}

// blockKey packs (run, block) into a map key.
func blockKey(run, block int) int64 { return int64(run)<<32 | int64(block) }

// gCursor walks the guide in order, restricted to one disk: nextFor
// yields the next not-yet-fetched block of the guide sequence that lives
// on disk d. Each disk owns an independent cursor.
type gCursor struct {
	gi, so int
}

func (s *Sorter) mergeGuided(parent obs.Active, group []Run, total, level int, final bool) Run {
	p := s.arr.Params()

	// Build the guide from the runs' minima sidecars, thinned so it fits
	// guideCap. Thinning keeps every thin-th minimum per run; a kept entry
	// then guides a span of thin blocks.
	sp := parent.Child("sort", "guide-build", 0)
	totalBlocks := 0
	nblocks := make([]int, len(group))
	for i, r := range group {
		nblocks[i] = (r.N + p.B - 1) / p.B
		totalBlocks += nblocks[i]
	}
	thin := 1
	for totalBlocks/thin > s.guideCap {
		thin *= 2
	}
	guide := make([]gEnt, 0, totalBlocks/thin+len(group))
	chunk := p.D * p.B
	s.arr.Mem.Use(chunk)
	minbuf := make([]record.Record, chunk)
	charged := 0
	for i, r := range group {
		if r.MinN != nblocks[i] {
			panic(fmt.Sprintf("guidesort: run %d has %d minima for %d blocks", i, r.MinN, nblocks[i]))
		}
		for pos := 0; pos < r.MinN; pos += chunk {
			s.checkCtx()
			m := chunk
			if r.MinN-pos < m {
				m = r.MinN - pos
			}
			s.readAligned(r.MinOff, pos, minbuf[:m])
			for j := 0; j < m; j++ {
				if (pos+j)%thin == 0 {
					span := thin
					if r.MinN-(pos+j) < span {
						span = r.MinN - (pos + j)
					}
					guide = append(guide, gEnt{key: minbuf[j], run: int32(i), block: int32(pos + j), span: int32(span)})
				}
			}
		}
		if add := len(guide) - charged; add > 0 {
			s.arr.Mem.Use(add)
			charged = len(guide)
		}
	}
	s.arr.Mem.Release(chunk)
	// Sort the guide by (key, run, block). Runs' minima are already sorted
	// internally; ties across runs break by (run, block) so the schedule
	// is deterministic and matches the merge's own tie-breaking closely.
	sort.Slice(guide, func(a, b int) bool {
		ga, gb := guide[a], guide[b]
		if c := ga.key.Compare(gb.key); c != 0 {
			return c < 0
		}
		if ga.run != gb.run {
			return ga.run < gb.run
		}
		return ga.block < gb.block
	})
	s.cpu.ChargeSort(len(guide))
	if len(guide) > s.met.GuidePeak {
		s.met.GuidePeak = len(guide)
	}
	sp.End(obs.Attr{Key: "entries", Val: int64(len(guide))}, obs.Attr{Key: "thin", Val: int64(thin)})

	// Fixed memory budget for the merge residents: one current block per
	// run, the prefetch cache, the output row, and the one-block minima
	// buffer (minima trickle in at one record per B output records, so a
	// single-block buffer costs only rare lone write I/Os).
	resident := len(group)*p.B + s.window*p.B + p.D*p.B
	if !final {
		resident += p.B
	}
	s.arr.Mem.Use(resident)

	// Prefetch machinery: per-disk guide cursors, the block cache, and the
	// fetched set (a block is fetched at most once, by schedule or demand).
	cursors := make([]gCursor, p.D)
	cache := make(map[int64][]record.Record)
	fetched := make(map[int64]bool)
	cached := 0

	// nextFor advances disk d's guide cursor to its next unfetched block.
	nextFor := func(d int) (run, block int, ok bool) {
		c := &cursors[d]
		for c.gi < len(guide) {
			e := guide[c.gi]
			if c.so >= int(e.span) {
				c.gi++
				c.so = 0
				continue
			}
			b := int(e.block) + c.so
			c.so++
			if b%p.D != d || fetched[blockKey(int(e.run), b)] {
				continue
			}
			return int(e.run), b, true
		}
		return 0, 0, false
	}

	// blockData trims a raw block to the records it actually holds (the
	// last block of a run is sentinel-padded on disk).
	blockCount := func(run, b int) int {
		n := group[run].N - b*p.B
		if n > p.B {
			n = p.B
		}
		return n
	}

	// fetchRound issues one parallel I/O: each disk with cache headroom
	// fetches the next block of its guide schedule. Returns false when no
	// disk had both headroom and a schedulable block.
	type pend struct {
		run, block int
		buf        []record.Record
	}
	fetchRound := func() bool {
		s.checkCtx()
		var ops []pdm.Op
		var pends []pend
		for d := 0; d < p.D; d++ {
			if cached+len(ops) >= s.window {
				break
			}
			run, b, ok := nextFor(d)
			if !ok {
				continue
			}
			buf := make([]record.Record, p.B)
			ops = append(ops, pdm.Op{Disk: d, Off: group[run].Off + b/p.D, Data: buf})
			fetched[blockKey(run, b)] = true
			pends = append(pends, pend{run, b, buf})
		}
		if len(ops) == 0 {
			return false
		}
		s.arr.ParallelIO(ops)
		for _, pe := range pends {
			cache[blockKey(pe.run, pe.block)] = pe.buf[:blockCount(pe.run, pe.block)]
		}
		cached += len(pends)
		return true
	}

	// Per-run consumption cursors.
	type runCur struct {
		next int // next block index to consume
		buf  []record.Record
	}
	curs := make([]runCur, len(group))

	// needBlock loads run i's next block into its cursor: from the cache
	// if prefetched, else by driving fetch rounds until it lands, else by
	// a single-block demand fetch once the window is saturated.
	needBlock := func(i int) bool {
		c := &curs[i]
		if c.next >= nblocks[i] {
			return false
		}
		k := blockKey(i, c.next)
		for {
			if data, ok := cache[k]; ok {
				delete(cache, k)
				cached--
				c.buf = data
				c.next++
				return true
			}
			if cached >= s.window || !fetchRound() {
				// Demand fetch straight into the cursor slot.
				s.checkCtx()
				b := c.next
				buf := make([]record.Record, p.B)
				s.arr.ParallelIO([]pdm.Op{{Disk: b % p.D, Off: group[i].Off + b/p.D, Data: buf}})
				fetched[k] = true
				c.buf = buf[:blockCount(i, b)]
				c.next++
				s.met.DemandFetches++
				return true
			}
		}
	}

	// The merge proper, streaming into the output region (and, unless
	// final, the output's own minima sidecar).
	out := s.newRegionWriter(total, p.D)
	var mins *regionWriter
	if !final {
		mins = s.newRegionWriter((total+p.B-1)/p.B, 1)
	}
	var h mergeHeap
	for i := range curs {
		if needBlock(i) {
			h = append(h, mergeItem{rec: curs[i].buf[0], run: i})
			curs[i].buf = curs[i].buf[1:]
		}
	}
	heap.Init(&h)
	written := 0
	for h.Len() > 0 {
		it := h[0]
		if mins != nil && written%p.B == 0 {
			mins.add(it.rec)
		}
		out.add(it.rec)
		written++
		c := &curs[it.run]
		if len(c.buf) == 0 {
			needBlock(it.run)
		}
		if len(c.buf) > 0 {
			h[0] = mergeItem{rec: c.buf[0], run: it.run}
			c.buf = c.buf[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	out.close()
	if written != total {
		panic(fmt.Sprintf("guidesort: merged %d of %d records", written, total))
	}
	s.cpu.ChargeMerge(total)
	s.cpu.ChargePartition(total, len(group))

	run := Run{Off: out.off, N: total, Level: level}
	if mins != nil {
		mins.close()
		run.MinOff, run.MinN = mins.off, mins.n
	}
	s.arr.Mem.Release(resident)
	s.arr.Mem.Release(charged)
	return run
}

// ---------------------------------------------------------------------------
// Striped merge (the no-guide degradation; arity M/(2DB)).

func (s *Sorter) mergeStriped(group []Run, total, level int) Run {
	p := s.arr.Params()
	row := p.D * p.B
	resident := len(group)*row + row // one stripe row per run + output row
	s.arr.Mem.Use(resident)

	type runCur struct {
		pos int
		buf []record.Record
	}
	curs := make([]runCur, len(group))
	refill := func(i int) bool {
		c := &curs[i]
		if c.pos >= group[i].N {
			return false
		}
		want := row
		if group[i].N-c.pos < want {
			want = group[i].N - c.pos
		}
		s.checkCtx()
		buf := make([]record.Record, want)
		s.readAligned(group[i].Off, c.pos, buf)
		c.pos += want
		c.buf = buf
		return true
	}

	out := s.newRegionWriter(total, p.D)
	var h mergeHeap
	for i := range curs {
		if refill(i) {
			h = append(h, mergeItem{rec: curs[i].buf[0], run: i})
			curs[i].buf = curs[i].buf[1:]
		}
	}
	heap.Init(&h)
	written := 0
	for h.Len() > 0 {
		it := h[0]
		out.add(it.rec)
		written++
		c := &curs[it.run]
		if len(c.buf) == 0 {
			refill(it.run)
		}
		if len(c.buf) > 0 {
			h[0] = mergeItem{rec: c.buf[0], run: it.run}
			c.buf = c.buf[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	out.close()
	if written != total {
		panic(fmt.Sprintf("guidesort: striped-merged %d of %d records", written, total))
	}
	s.cpu.ChargeMerge(total)
	s.cpu.ChargePartition(total, len(group))
	s.arr.Mem.Release(resident)
	return Run{Off: out.off, N: total, Level: level}
}

// ---------------------------------------------------------------------------
// Shared plumbing.

type mergeItem struct {
	rec record.Record
	run int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].rec.Less(h[j].rec) }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// allocStripe allocates a striped region for n records.
func (s *Sorter) allocStripe(n int) int {
	p := s.arr.Params()
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	return s.arr.AllocStripe(perDisk)
}

// readAligned reads buf's worth of records starting at record index pos of
// the striped region at block offset off, full-width. pos must be a
// multiple of B.
func (s *Sorter) readAligned(off, pos int, buf []record.Record) {
	p := s.arr.Params()
	if pos%p.B != 0 {
		panic("guidesort: unaligned region read")
	}
	first := pos / p.B
	nblocks := (len(buf) + p.B - 1) / p.B
	for base := 0; base < nblocks; base += p.D {
		var ops []pdm.Op
		var dsts [][]record.Record
		for j := 0; j < p.D && base+j < nblocks; j++ {
			blk := first + base + j
			b := make([]record.Record, p.B)
			dsts = append(dsts, b)
			ops = append(ops, pdm.Op{Disk: blk % p.D, Off: off + blk/p.D, Data: b})
		}
		s.arr.ParallelIO(ops)
		for j, b := range dsts {
			lo := (base + j) * p.B
			hi := lo + p.B
			if hi > len(buf) {
				hi = len(buf)
			}
			if lo < len(buf) {
				copy(buf[lo:hi], b[:hi-lo])
			}
		}
	}
}

// writeAligned writes buf starting at record index pos of the striped
// region at block offset off, full-width, sentinel-padding the last
// partial block. pos must be a multiple of B.
func (s *Sorter) writeAligned(off, pos int, buf []record.Record) {
	p := s.arr.Params()
	if pos%p.B != 0 {
		panic("guidesort: unaligned region write")
	}
	first := pos / p.B
	nblocks := (len(buf) + p.B - 1) / p.B
	for base := 0; base < nblocks; base += p.D {
		var ops []pdm.Op
		for j := 0; j < p.D && base+j < nblocks; j++ {
			blk := first + base + j
			b := make([]record.Record, p.B)
			lo := (base + j) * p.B
			n := copy(b, buf[lo:min(lo+p.B, len(buf))])
			for k := n; k < p.B; k++ {
				b[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
			}
			ops = append(ops, pdm.Op{Disk: blk % p.D, Off: off + blk/p.D, Write: true, Data: b})
		}
		s.arr.ParallelIO(ops)
	}
}

// regionWriter streams records into a fresh striped region, flushing
// rowBlocks blocks per parallel I/O (D for full-width output, 1 for the
// trickling minima sidecar).
type regionWriter struct {
	s         *Sorter
	off       int
	blk       int
	n         int
	row       int
	rowBlocks int
	buf       []record.Record
}

func (s *Sorter) newRegionWriter(capacity, rowBlocks int) *regionWriter {
	p := s.arr.Params()
	row := rowBlocks * p.B
	return &regionWriter{s: s, off: s.allocStripe(capacity), row: row, rowBlocks: rowBlocks, buf: make([]record.Record, 0, row)}
}

func (w *regionWriter) add(r record.Record) {
	w.buf = append(w.buf, r)
	w.n++
	if len(w.buf) >= w.row {
		w.flush(false)
	}
}

// flush writes out full stripe rows (every buffered record when force,
// sentinel-padding the final partial block) and compacts the buffer.
func (w *regionWriter) flush(force bool) {
	p := w.s.arr.Params()
	pos := 0
	for len(w.buf)-pos >= p.B || (force && len(w.buf) > pos) {
		var ops []pdm.Op
		for j := 0; j < w.rowBlocks && len(w.buf) > pos; j++ {
			rem := w.buf[pos:]
			blk := make([]record.Record, p.B)
			take := copy(blk, rem)
			if take < p.B {
				for k := take; k < p.B; k++ {
					blk[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
				}
				if !force {
					break
				}
			}
			pos += take
			ops = append(ops, pdm.Op{Disk: w.blk % p.D, Off: w.off + w.blk/p.D, Write: true, Data: blk})
			w.blk++
		}
		if len(ops) == 0 {
			break
		}
		w.s.arr.ParallelIO(ops)
	}
	w.buf = w.buf[:copy(w.buf, w.buf[pos:])]
}

func (w *regionWriter) close() { w.flush(true) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
