// Package hmm models the Hierarchical Memory Model of Aggarwal, Alpern,
// Chandra and Snir (reference [AAC]; Figure 3a of the paper): a single flat
// address space in which touching memory location x costs f(x), for a
// "well-behaved" cost function f such as log x or x^α.
//
// The package provides the cost functions used throughout Theorems 2 and 3
// and the HMM access-cost model consumed by the hierarchy machine in
// internal/hier. Costs of contiguous range accesses are computed in closed
// form (exactly for the power laws' integral bound, via the log-Gamma
// function for logarithms), so that simulating a billion-unit charge does
// not require a billion float additions.
package hmm

import (
	"math"
	"strconv"
)

// CostFunc is a well-behaved HMM access-cost function f(x). Addresses are
// 0-based internally; the cost of touching address a is F(a+1), keeping the
// paper's convention that the first location costs f(1).
type CostFunc interface {
	// F evaluates f(x) for x >= 1, with the paper's log x = max(1, log2 x)
	// convention applied by the implementations that need it.
	F(x float64) float64
	// Range returns the cost of touching every address in [lo, hi), i.e.
	// the sum of F over that range, evaluated in closed form.
	Range(lo, hi int) float64
	// Name labels the function in experiment tables.
	Name() string
}

// LogCost is f(x) = max(1, log2 x), the canonical HMM_log x model.
type LogCost struct{}

// F returns max(1, log2 x).
func (LogCost) F(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// Range sums max(1, log2(a+1)) for a in [lo, hi). The sum of log2 over
// 2..n is (lgΓ(n+1) - lgΓ(2+0))/ln 2; the first address costs 1 by the
// max(1, ·) floor.
func (LogCost) Range(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	total := 0.0
	// Addresses 0 and 1 (locations 1 and 2) cost exactly 1.
	if lo < 2 {
		capped := hi
		if capped > 2 {
			capped = 2
		}
		total += float64(capped - lo)
		lo = 2
		if lo >= hi {
			return total
		}
	}
	// Σ_{a=lo}^{hi-1} log2(a+1) = (lnΓ(hi+1) - lnΓ(lo+1)) / ln 2.
	lgHi, _ := math.Lgamma(float64(hi) + 1)
	lgLo, _ := math.Lgamma(float64(lo) + 1)
	return total + (lgHi-lgLo)/math.Ln2
}

// Name returns "log".
func (LogCost) Name() string { return "log" }

// PowerCost is f(x) = x^Alpha with Alpha > 0 (the BT and HMM polynomial
// regimes of Theorems 2 and 3).
type PowerCost struct {
	Alpha float64
}

// F returns x^Alpha.
func (p PowerCost) F(x float64) float64 { return math.Pow(x, p.Alpha) }

// Range integrates x^Alpha over the addressed locations: Σ_{a=lo}^{hi-1}
// (a+1)^α is evaluated as the midpoint integral ((hi+0.5)^{α+1} -
// (lo+0.5)^{α+1})/(α+1), exact to second order and monotone in hi.
func (p PowerCost) Range(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	a1 := p.Alpha + 1
	return (math.Pow(float64(hi)+0.5, a1) - math.Pow(float64(lo)+0.5, a1)) / a1
}

// Name returns e.g. "x^0.5".
func (p PowerCost) Name() string {
	return "x^" + strconv.FormatFloat(p.Alpha, 'g', -1, 64)
}

// Model is the HMM access-cost model for internal/hier's machine: touching
// a contiguous range costs the sum of per-location costs — HMM has no block
// transfer.
type Model struct {
	Cost CostFunc
}

// AccessCost returns the HMM cost for one hierarchy to touch the address
// range [lo, hi).
func (m Model) AccessCost(lo, hi int) float64 { return m.Cost.Range(lo, hi) }

// Name labels the model.
func (m Model) Name() string { return "HMM(" + m.Cost.Name() + ")" }
