package hmm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogCostF(t *testing.T) {
	f := LogCost{}
	if f.F(1) != 1 || f.F(2) != 1 {
		t.Fatal("log floor of 1 violated")
	}
	if f.F(8) != 3 {
		t.Fatalf("F(8) = %v, want 3", f.F(8))
	}
}

func TestLogCostRangeMatchesSum(t *testing.T) {
	f := LogCost{}
	for _, c := range []struct{ lo, hi int }{{0, 1}, {0, 2}, {0, 10}, {5, 100}, {0, 1000}, {100, 101}} {
		want := 0.0
		for a := c.lo; a < c.hi; a++ {
			want += f.F(float64(a + 1))
		}
		got := f.Range(c.lo, c.hi)
		if math.Abs(got-want) > 1e-6*want+1e-9 {
			t.Fatalf("Range(%d,%d) = %v, want %v", c.lo, c.hi, got, want)
		}
	}
	if f.Range(5, 5) != 0 || f.Range(7, 3) != 0 {
		t.Fatal("empty range must cost 0")
	}
}

func TestPowerCostRangeApproximatesSum(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2} {
		f := PowerCost{Alpha: alpha}
		for _, c := range []struct{ lo, hi int }{{0, 10}, {0, 1000}, {500, 2000}} {
			want := 0.0
			for a := c.lo; a < c.hi; a++ {
				want += f.F(float64(a + 1))
			}
			got := f.Range(c.lo, c.hi)
			if math.Abs(got-want) > 0.02*want {
				t.Fatalf("alpha=%v Range(%d,%d) = %v, want ~%v", alpha, c.lo, c.hi, got, want)
			}
		}
	}
}

func TestRangeAdditive(t *testing.T) {
	// Range(lo,hi) must equal Range(lo,mid)+Range(mid,hi) exactly, so that
	// splitting an access never changes the charge.
	fns := []CostFunc{LogCost{}, PowerCost{Alpha: 0.5}, PowerCost{Alpha: 2}}
	f := func(loRaw, midRaw, hiRaw uint16) bool {
		lo, mid, hi := int(loRaw), int(midRaw), int(hiRaw)
		if lo > mid {
			lo, mid = mid, lo
		}
		if mid > hi {
			mid, hi = hi, mid
		}
		if lo > mid {
			lo, mid = mid, lo
		}
		for _, fn := range fns {
			whole := fn.Range(lo, hi)
			split := fn.Range(lo, mid) + fn.Range(mid, hi)
			if math.Abs(whole-split) > 1e-6*(whole+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMonotone(t *testing.T) {
	fns := []CostFunc{LogCost{}, PowerCost{Alpha: 0.5}}
	for _, fn := range fns {
		prev := 0.0
		for hi := 1; hi < 2000; hi += 37 {
			c := fn.Range(0, hi)
			if c < prev {
				t.Fatalf("%s: Range(0,%d) = %v < previous %v", fn.Name(), hi, c, prev)
			}
			prev = c
		}
	}
}

func TestNames(t *testing.T) {
	if (LogCost{}).Name() != "log" {
		t.Fatal("log name")
	}
	if (PowerCost{Alpha: 0.5}).Name() != "x^0.5" {
		t.Fatalf("power name = %q", (PowerCost{Alpha: 0.5}).Name())
	}
	m := Model{Cost: LogCost{}}
	if m.Name() != "HMM(log)" {
		t.Fatalf("model name = %q", m.Name())
	}
}

func TestModelAccessCost(t *testing.T) {
	m := Model{Cost: LogCost{}}
	if m.AccessCost(0, 4) != (LogCost{}).Range(0, 4) {
		t.Fatal("model must delegate to Range")
	}
}
