package pdm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"balancesort/internal/record"
)

// File-backed disk arrays: each simulated drive persists its blocks to one
// file under a directory, in the 16-byte wire format of internal/record.
// The cost model is unchanged — parallel I/O counting and the
// one-block-per-disk rule work exactly as with the in-memory store — but
// the data outlives the process and its footprint is disk, not RAM, so the
// library genuinely sorts datasets larger than host memory.
//
// Close writes a manifest (parameters plus allocation marks) so a later
// OpenFileBacked can resume against the same directory.

// fileStore backs one drive with one file; block i occupies bytes
// [i*B*EncodedSize, (i+1)*B*EncodedSize).
type fileStore struct {
	b       int
	f       *os.File
	written []bool
}

func (s *fileStore) blockBytes() int { return s.b * record.EncodedSize }

func (s *fileStore) read(off int, dst []record.Record) error {
	if off >= len(s.written) || !s.written[off] {
		return fmt.Errorf("pdm: read of unwritten block off=%d", off)
	}
	buf := make([]byte, s.blockBytes())
	if _, err := s.f.ReadAt(buf, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file read: %w", err)
	}
	for i := range dst {
		dst[i] = record.Decode(buf[i*record.EncodedSize:])
	}
	return nil
}

func (s *fileStore) write(off int, src []record.Record) error {
	buf := record.EncodeSlice(src)
	if _, err := s.f.WriteAt(buf, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file write: %w", err)
	}
	for off >= len(s.written) {
		s.written = append(s.written, false)
	}
	s.written[off] = true
	return nil
}

func (s *fileStore) close() error { return s.f.Close() }

// manifest is the JSON persisted next to the disk files.
type manifest struct {
	D        int   `json:"d"`
	B        int   `json:"b"`
	M        int   `json:"m"`
	NextFree []int `json:"next_free"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func diskPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("disk%03d.bin", i))
}

// NewFileBacked creates a file-backed array under dir (created if absent).
// Any existing array files in dir are truncated.
func NewFileBacked(p Params, dir string) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stores := make([]blockStore, p.D)
	for i := range stores {
		f, err := os.Create(diskPath(dir, i))
		if err != nil {
			return nil, err
		}
		stores[i] = &fileStore{b: p.B, f: f}
	}
	var a *Array
	a = newWithStores(p, ModePDM, stores, func() error { return writeManifest(dir, p, a.nextFree) })
	return a, nil
}

// OpenFileBacked resumes the array persisted under dir. All blocks below
// each disk's file size count as written.
func OpenFileBacked(dir string) (*Array, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("pdm: no manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("pdm: bad manifest: %w", err)
	}
	p := Params{D: m.D, B: m.B, M: m.M}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(m.NextFree) != p.D {
		return nil, fmt.Errorf("pdm: manifest has %d allocation marks for D=%d", len(m.NextFree), p.D)
	}
	stores := make([]blockStore, p.D)
	for i := range stores {
		f, err := os.OpenFile(diskPath(dir, i), os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		fs := &fileStore{b: p.B, f: f}
		blocks := int(st.Size()) / fs.blockBytes()
		fs.written = make([]bool, blocks)
		for j := range fs.written {
			fs.written[j] = true
		}
		stores[i] = fs
	}
	var a *Array
	a = newWithStores(p, ModePDM, stores, func() error { return writeManifest(dir, p, a.nextFree) })
	copy(a.nextFree, m.NextFree)
	return a, nil
}

func writeManifest(dir string, p Params, nextFree []int) error {
	m := manifest{D: p.D, B: p.B, M: p.M, NextFree: append([]int(nil), nextFree...)}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath(dir), raw, 0o644)
}
