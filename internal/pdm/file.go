package pdm

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"balancesort/internal/diskio"
	"balancesort/internal/record"
)

// File-backed disk arrays: each simulated drive persists its blocks to one
// file under a directory, in the 16-byte wire format of internal/record.
// The cost model is unchanged — parallel I/O counting and the
// one-block-per-disk rule work exactly as with the in-memory store — but
// the data outlives the process and its footprint is disk, not RAM, so the
// library genuinely sorts datasets larger than host memory.
//
// The drives are served either synchronously (fileStore) or through the
// concurrent diskio engine (engineStore over *os.File devices); the
// engine-backed variants take a diskio.Config.
//
// Integrity: unless disabled, every block carries a CRC32C (Castagnoli) in
// a per-disk sidecar file (disk%03d.crc, 4 little-endian bytes per block),
// written on every block write and verified on every block read. A
// mismatch surfaces as a typed *CorruptBlockError, and Scrub sweeps every
// written block without the sort having to touch it.
//
// Close writes a manifest (parameters, mode, allocation and write marks,
// checksum algorithm) so a later OpenFileBacked can resume against the
// same directory; the manifest is also rewritten on every Sync, and always
// via write-to-temp-then-rename so a crash can never leave a torn
// manifest behind.

// castagnoli is the CRC32C polynomial table shared by the block sidecars
// and the journal line checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumCRC32C names the only checksum algorithm the manifest accepts.
const ChecksumCRC32C = "crc32c"

// crcSize is the sidecar bytes per block.
const crcSize = 4

// CorruptBlockError reports a block whose stored checksum disagrees with
// its data — a torn write, a truncated sidecar, or silent media
// corruption. It is the typed error behind read verification and Scrub.
type CorruptBlockError struct {
	Disk  int    // which simulated drive
	Block int    // block offset on that drive
	Want  uint32 // checksum recorded in the sidecar (0 if unreadable)
	Got   uint32 // checksum of the bytes actually read
}

func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("pdm: corrupt block: disk %d block %d checksum %08x, data hashes to %08x",
		e.Disk, e.Block, e.Want, e.Got)
}

// TruncatedDiskError reports a scratch file that disagrees with the
// manifest at open time: shorter than the recorded write high-water mark,
// or not a whole number of blocks. Catching this at OpenFileBacked beats
// failing later, deep inside a read.
type TruncatedDiskError struct {
	Disk       int
	Path       string
	WantBlocks int   // manifest's write high-water mark
	GotBytes   int64 // actual file size
	BlockBytes int
}

func (e *TruncatedDiskError) Error() string {
	return fmt.Sprintf("pdm: disk %d file %s is %d bytes, want at least %d whole %d-byte blocks",
		e.Disk, e.Path, e.GotBytes, e.WantBlocks, e.BlockBytes)
}

// fileStore backs one drive with one file; block i occupies bytes
// [i*B*EncodedSize, (i+1)*B*EncodedSize). When crc is non-nil the store
// maintains the CRC32C sidecar and verifies every read against it.
type fileStore struct {
	b       int
	disk    int
	f       *os.File
	crc     *os.File // checksum sidecar; nil = checksums off
	written []bool
	// scratch is the store's reusable wire-format staging buffer; safe
	// because each store is driven by one disk goroutine (Peek is
	// contractually never concurrent with a ParallelIO).
	scratch []byte
}

func (s *fileStore) blockBytes() int { return s.b * record.EncodedSize }

func (s *fileStore) read(off int, dst []record.Record) error {
	if off >= len(s.written) || !s.written[off] {
		return fmt.Errorf("pdm: read of unwritten block off=%d", off)
	}
	if s.scratch == nil {
		s.scratch = make([]byte, s.blockBytes())
	}
	if _, err := s.f.ReadAt(s.scratch, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file read: %w", err)
	}
	if err := verifyCRC(s.crc, s.disk, off, s.scratch); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = record.Decode(s.scratch[i*record.EncodedSize:])
	}
	return nil
}

func (s *fileStore) write(off int, src []record.Record) error {
	if s.scratch == nil {
		s.scratch = make([]byte, s.blockBytes())
	}
	buf := s.scratch[:0]
	for _, r := range src {
		buf = record.Encode(buf, r)
	}
	if _, err := s.f.WriteAt(buf, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file write: %w", err)
	}
	if err := writeCRC(s.crc, off, buf); err != nil {
		return err
	}
	for off >= len(s.written) {
		s.written = append(s.written, false)
	}
	s.written[off] = true
	return nil
}

func (s *fileStore) close() error {
	err := s.f.Close()
	if s.crc != nil {
		if cerr := s.crc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (s *fileStore) highWater() int { return len(s.written) }

func (s *fileStore) checksummed() bool { return s.crc != nil }

func (s *fileStore) verifyAll() (int, []*CorruptBlockError) {
	if s.scratch == nil {
		s.scratch = make([]byte, s.blockBytes())
	}
	checked := 0
	var bad []*CorruptBlockError
	for off, w := range s.written {
		if !w {
			continue
		}
		if _, err := s.f.ReadAt(s.scratch, int64(off)*int64(s.blockBytes())); err != nil {
			bad = append(bad, &CorruptBlockError{Disk: s.disk, Block: off})
			checked++
			continue
		}
		if isAllocationHole(s.crc, off, s.scratch) {
			continue
		}
		checked++
		if err := verifyCRC(s.crc, s.disk, off, s.scratch); err != nil {
			if ce, ok := err.(*CorruptBlockError); ok {
				bad = append(bad, ce)
			}
		}
	}
	return checked, bad
}

// writeCRC records the block's checksum in the sidecar (no-op when
// checksums are off).
func writeCRC(crc *os.File, off int, data []byte) error {
	if crc == nil {
		return nil
	}
	var b [crcSize]byte
	binary.LittleEndian.PutUint32(b[:], crc32.Checksum(data, castagnoli))
	if _, err := crc.WriteAt(b[:], int64(off)*crcSize); err != nil {
		return fmt.Errorf("pdm: checksum write: %w", err)
	}
	return nil
}

// isAllocationHole reports whether a block below the write high-water
// mark was in fact never written: distribution allocates chains eagerly,
// so both the data file and the sidecar can be sparse there, reading back
// as zeros. A genuinely written all-zero block is distinguishable — its
// sidecar entry would hold the (nonzero) CRC32C of the zero block.
func isAllocationHole(crc *os.File, off int, data []byte) bool {
	var b [crcSize]byte
	if _, err := crc.ReadAt(b[:], int64(off)*crcSize); err != nil || binary.LittleEndian.Uint32(b[:]) != 0 {
		return false
	}
	for _, v := range data {
		if v != 0 {
			return false
		}
	}
	return true
}

// verifyCRC checks data against the sidecar entry for block off; an
// unreadable sidecar entry counts as corruption (Want = 0).
func verifyCRC(crc *os.File, disk, off int, data []byte) error {
	if crc == nil {
		return nil
	}
	got := crc32.Checksum(data, castagnoli)
	var b [crcSize]byte
	if _, err := crc.ReadAt(b[:], int64(off)*crcSize); err != nil {
		return &CorruptBlockError{Disk: disk, Block: off, Want: 0, Got: got}
	}
	want := binary.LittleEndian.Uint32(b[:])
	if want != got {
		return &CorruptBlockError{Disk: disk, Block: off, Want: want, Got: got}
	}
	return nil
}

// Manifest is the JSON persisted next to the disk files. It is exported
// so its parser can be fuzzed and so tools can inspect scratch
// directories without opening the array.
type Manifest struct {
	D        int    `json:"d"`
	B        int    `json:"b"`
	M        int    `json:"m"`
	Mode     Mode   `json:"mode"`
	NextFree []int  `json:"next_free"`
	Written  []int  `json:"written,omitempty"`  // per-disk write high-water marks in blocks
	Checksum string `json:"checksum,omitempty"` // "" or ChecksumCRC32C
}

// ParseManifest decodes and validates a manifest. It never panics on
// corrupted or truncated input; every malformation is an error.
func ParseManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("pdm: bad manifest: %w", err)
	}
	p := Params{D: m.D, B: m.B, M: m.M}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The persisted mode decides which I/O rule resumes: an AgV array
	// must not silently come back under PDM accounting (or vice versa).
	if m.Mode != ModePDM && m.Mode != ModeAgV {
		return nil, fmt.Errorf("pdm: manifest has unknown mode %d", m.Mode)
	}
	if len(m.NextFree) != m.D {
		return nil, fmt.Errorf("pdm: manifest has %d allocation marks for D=%d", len(m.NextFree), m.D)
	}
	for i, nf := range m.NextFree {
		if nf < 0 {
			return nil, fmt.Errorf("pdm: manifest allocation mark %d on disk %d", nf, i)
		}
	}
	if m.Written != nil {
		if len(m.Written) != m.D {
			return nil, fmt.Errorf("pdm: manifest has %d write marks for D=%d", len(m.Written), m.D)
		}
		for i, w := range m.Written {
			if w < 0 || w > m.NextFree[i] {
				return nil, fmt.Errorf("pdm: manifest write mark %d exceeds allocation mark %d on disk %d",
					w, m.NextFree[i], i)
			}
		}
	}
	if m.Checksum != "" && m.Checksum != ChecksumCRC32C {
		return nil, fmt.Errorf("pdm: manifest has unknown checksum algorithm %q", m.Checksum)
	}
	return &m, nil
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func diskPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("disk%03d.bin", i))
}
func crcPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("disk%03d.crc", i))
}

// FileOptions configures a file-backed array beyond the model parameters.
type FileOptions struct {
	// Mode selects the model's I/O rule (new arrays; reopened arrays
	// follow their manifest).
	Mode Mode
	// Engine, when non-nil, mounts the concurrent diskio engine with this
	// configuration (BlockBytes is derived and may be left zero).
	Engine *diskio.Config
	// NoChecksums disables the CRC32C block sidecars for a new array.
	// Reopened arrays follow their manifest, whatever this says.
	NoChecksums bool
}

// NewFileBacked creates a file-backed array under dir (created if absent)
// in PDM mode with checksums on, served synchronously. Any existing array
// files in dir are truncated.
func NewFileBacked(p Params, dir string) (*Array, error) {
	return NewFileBackedOpts(p, dir, FileOptions{})
}

// NewFileBackedMode is NewFileBacked with an explicit model mode; the mode
// is persisted in the manifest so the array resumes under the same rule.
func NewFileBackedMode(p Params, dir string, mode Mode) (*Array, error) {
	return NewFileBackedOpts(p, dir, FileOptions{Mode: mode})
}

// NewFileBackedEngine creates a file-backed array whose drives are served
// concurrently by a diskio engine with the given configuration
// (ecfg.BlockBytes is derived from p and may be left zero).
func NewFileBackedEngine(p Params, dir string, ecfg diskio.Config) (*Array, error) {
	return NewFileBackedOpts(p, dir, FileOptions{Engine: &ecfg})
}

// NewFileBackedOpts creates a file-backed array under dir with the given
// options. Any existing array files in dir are truncated, and a manifest
// is written immediately so even a freshly crashed run leaves a readable
// directory behind.
func NewFileBackedOpts(p Params, dir string, o FileOptions) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.Mode != ModePDM && o.Mode != ModeAgV {
		return nil, fmt.Errorf("pdm: unknown mode %d", o.Mode)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	files := make([]*os.File, p.D)
	var crcs []*os.File
	if !o.NoChecksums {
		crcs = make([]*os.File, p.D)
	}
	fail := func(err error) (*Array, error) {
		closeFiles(files)
		closeFiles(crcs)
		return nil, err
	}
	for i := range files {
		f, err := os.Create(diskPath(dir, i))
		if err != nil {
			return fail(err)
		}
		files[i] = f
		if crcs != nil {
			c, err := os.Create(crcPath(dir, i))
			if err != nil {
				return fail(err)
			}
			crcs[i] = c
		}
	}
	a, err := assembleFileBacked(p, dir, o.Mode, o.Engine, files, crcs, nil)
	if err != nil {
		return nil, err
	}
	if err := a.Sync(); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// OpenFileBacked resumes the array persisted under dir, served
// synchronously, in the mode recorded by the manifest.
func OpenFileBacked(dir string) (*Array, error) {
	return OpenFileBackedOpts(dir, FileOptions{})
}

// OpenFileBackedEngine resumes the array persisted under dir with a
// diskio engine serving the drives.
func OpenFileBackedEngine(dir string, ecfg diskio.Config) (*Array, error) {
	return OpenFileBackedOpts(dir, FileOptions{Engine: &ecfg})
}

// OpenFileBackedOpts resumes the array persisted under dir. The manifest
// decides the mode and the checksum discipline (o.Mode and o.NoChecksums
// are ignored); o.Engine selects how the drives are served. Per-disk file
// sizes are validated against the manifest's write marks at open time —
// a truncated or ragged scratch file is a typed *TruncatedDiskError here
// rather than a confusing failure deep inside a later read.
func OpenFileBackedOpts(dir string, o FileOptions) (*Array, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("pdm: no manifest: %w", err)
	}
	m, err := ParseManifest(raw)
	if err != nil {
		return nil, err
	}
	p := Params{D: m.D, B: m.B, M: m.M}
	blockBytes := p.B * record.EncodedSize

	files := make([]*os.File, p.D)
	var crcs []*os.File
	if m.Checksum == ChecksumCRC32C {
		crcs = make([]*os.File, p.D)
	}
	fail := func(err error) (*Array, error) {
		closeFiles(files)
		closeFiles(crcs)
		return nil, err
	}
	written := make([]int, p.D)
	for i := range files {
		f, err := os.OpenFile(diskPath(dir, i), os.O_RDWR, 0)
		if err != nil {
			return fail(err)
		}
		files[i] = f
		st, err := f.Stat()
		if err != nil {
			return fail(err)
		}
		want := 0
		if m.Written != nil {
			want = m.Written[i]
		}
		if st.Size()%int64(blockBytes) != 0 || st.Size() < int64(want)*int64(blockBytes) {
			return fail(&TruncatedDiskError{
				Disk: i, Path: diskPath(dir, i),
				WantBlocks: want, GotBytes: st.Size(), BlockBytes: blockBytes,
			})
		}
		if m.Written != nil {
			written[i] = want
		} else {
			// Legacy manifest without write marks: trust the file extent.
			written[i] = int(st.Size()) / blockBytes
		}
		if crcs != nil {
			c, err := os.OpenFile(crcPath(dir, i), os.O_RDWR, 0)
			if err != nil {
				return fail(fmt.Errorf("pdm: checksum sidecar: %w", err))
			}
			crcs[i] = c
			cst, err := c.Stat()
			if err != nil {
				return fail(err)
			}
			if cst.Size() < int64(written[i])*crcSize {
				return fail(&TruncatedDiskError{
					Disk: i, Path: crcPath(dir, i),
					WantBlocks: written[i], GotBytes: cst.Size(), BlockBytes: crcSize,
				})
			}
		}
	}
	return assembleFileBacked(p, dir, m.Mode, o.Engine, files, crcs, func(a *Array) {
		copy(a.nextFree, m.NextFree)
		for i, d := range a.disks {
			marks := make([]bool, written[i])
			for j := range marks {
				marks[j] = true
			}
			switch s := d.store.(type) {
			case *fileStore:
				s.written = marks
			case *engineStore:
				s.written = marks
			}
		}
	})
}

// assembleFileBacked builds the array over the opened files — plain
// fileStores when ecfg is nil, an engine mount otherwise — and arranges
// for Sync and Close to persist the manifest. init (if non-nil) restores
// resumed state before the array is returned.
func assembleFileBacked(p Params, dir string, mode Mode, ecfg *diskio.Config, files, crcs []*os.File, init func(*Array)) (*Array, error) {
	stores := make([]blockStore, p.D)
	var eng *diskio.Engine
	if ecfg != nil {
		cfg := *ecfg
		cfg.BlockBytes = p.B * record.EncodedSize
		devs := make([]diskio.Device, p.D)
		for i, f := range files {
			devs[i] = f
		}
		var err error
		eng, err = diskio.New(cfg, devs)
		if err != nil {
			closeFiles(files)
			closeFiles(crcs)
			return nil, err
		}
		for i := range stores {
			es := newEngineStore(p.B, i, eng)
			if crcs != nil {
				es.crc = crcs[i]
			}
			stores[i] = es
		}
	} else {
		for i, f := range files {
			fs := &fileStore{b: p.B, disk: i, f: f}
			if crcs != nil {
				fs.crc = crcs[i]
			}
			stores[i] = fs
		}
	}
	checksum := ""
	if crcs != nil {
		checksum = ChecksumCRC32C
	}
	var a *Array
	persist := func() error {
		return writeManifest(dir, Manifest{
			D: p.D, B: p.B, M: p.M, Mode: mode,
			NextFree: append([]int(nil), a.nextFree...),
			Written:  a.writtenMarks(),
			Checksum: checksum,
		})
	}
	a = newWithStores(p, mode, stores, func() error {
		// For engine mounts the per-store close() only flushed; closing
		// the engine stops the workers and closes the files, and must
		// precede the manifest write so its data is durable first. The
		// crc sidecars are not engine devices, so they are closed here.
		var firstErr error
		if eng != nil {
			firstErr = eng.Close()
			for _, c := range crcs {
				if err := c.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if err := persist(); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	})
	// Sync makes everything written so far durable and the manifest
	// consistent with it — the commit primitive the sort-pass journal
	// builds on.
	a.syncFn = func() error {
		if eng != nil {
			if err := eng.FlushAll(); err != nil {
				return err
			}
		}
		for _, f := range files {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		for _, c := range crcs {
			if err := c.Sync(); err != nil {
				return err
			}
		}
		return persist()
	}
	a.engine = eng
	if init != nil {
		init(a)
	}
	return a, nil
}

func closeFiles(files []*os.File) {
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
}

// writeManifest persists the manifest atomically (temp file + rename), so
// a crash mid-write can never leave a torn manifest.
func writeManifest(dir string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := manifestPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, manifestPath(dir))
}
