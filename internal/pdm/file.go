package pdm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"balancesort/internal/diskio"
	"balancesort/internal/record"
)

// File-backed disk arrays: each simulated drive persists its blocks to one
// file under a directory, in the 16-byte wire format of internal/record.
// The cost model is unchanged — parallel I/O counting and the
// one-block-per-disk rule work exactly as with the in-memory store — but
// the data outlives the process and its footprint is disk, not RAM, so the
// library genuinely sorts datasets larger than host memory.
//
// The drives are served either synchronously (fileStore) or through the
// concurrent diskio engine (engineStore over *os.File devices); the
// engine-backed variants take a diskio.Config.
//
// Close writes a manifest (parameters, mode, allocation marks) so a later
// OpenFileBacked can resume against the same directory.

// fileStore backs one drive with one file; block i occupies bytes
// [i*B*EncodedSize, (i+1)*B*EncodedSize).
type fileStore struct {
	b       int
	f       *os.File
	written []bool
	// scratch is the store's reusable wire-format staging buffer; safe
	// because each store is driven by one disk goroutine (Peek is
	// contractually never concurrent with a ParallelIO).
	scratch []byte
}

func (s *fileStore) blockBytes() int { return s.b * record.EncodedSize }

func (s *fileStore) read(off int, dst []record.Record) error {
	if off >= len(s.written) || !s.written[off] {
		return fmt.Errorf("pdm: read of unwritten block off=%d", off)
	}
	if s.scratch == nil {
		s.scratch = make([]byte, s.blockBytes())
	}
	if _, err := s.f.ReadAt(s.scratch, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file read: %w", err)
	}
	for i := range dst {
		dst[i] = record.Decode(s.scratch[i*record.EncodedSize:])
	}
	return nil
}

func (s *fileStore) write(off int, src []record.Record) error {
	if s.scratch == nil {
		s.scratch = make([]byte, s.blockBytes())
	}
	buf := s.scratch[:0]
	for _, r := range src {
		buf = record.Encode(buf, r)
	}
	if _, err := s.f.WriteAt(buf, int64(off)*int64(s.blockBytes())); err != nil {
		return fmt.Errorf("pdm: file write: %w", err)
	}
	for off >= len(s.written) {
		s.written = append(s.written, false)
	}
	s.written[off] = true
	return nil
}

func (s *fileStore) close() error { return s.f.Close() }

// manifest is the JSON persisted next to the disk files.
type manifest struct {
	D        int   `json:"d"`
	B        int   `json:"b"`
	M        int   `json:"m"`
	Mode     Mode  `json:"mode"`
	NextFree []int `json:"next_free"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func diskPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("disk%03d.bin", i))
}

// NewFileBacked creates a file-backed array under dir (created if absent)
// in PDM mode, served synchronously. Any existing array files in dir are
// truncated.
func NewFileBacked(p Params, dir string) (*Array, error) {
	return newFileBacked(p, dir, ModePDM, nil)
}

// NewFileBackedMode is NewFileBacked with an explicit model mode; the mode
// is persisted in the manifest so the array resumes under the same rule.
func NewFileBackedMode(p Params, dir string, mode Mode) (*Array, error) {
	return newFileBacked(p, dir, mode, nil)
}

// NewFileBackedEngine creates a file-backed array whose drives are served
// concurrently by a diskio engine with the given configuration
// (ecfg.BlockBytes is derived from p and may be left zero).
func NewFileBackedEngine(p Params, dir string, ecfg diskio.Config) (*Array, error) {
	return newFileBacked(p, dir, ModePDM, &ecfg)
}

func newFileBacked(p Params, dir string, mode Mode, ecfg *diskio.Config) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mode != ModePDM && mode != ModeAgV {
		return nil, fmt.Errorf("pdm: unknown mode %d", mode)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	files := make([]*os.File, p.D)
	for i := range files {
		f, err := os.Create(diskPath(dir, i))
		if err != nil {
			closeFiles(files[:i])
			return nil, err
		}
		files[i] = f
	}
	return assembleFileBacked(p, dir, mode, ecfg, files, nil)
}

// OpenFileBacked resumes the array persisted under dir, served
// synchronously, in the mode recorded by the manifest. All blocks below
// each disk's file size count as written.
func OpenFileBacked(dir string) (*Array, error) {
	return openFileBacked(dir, nil)
}

// OpenFileBackedEngine resumes the array persisted under dir with a
// diskio engine serving the drives.
func OpenFileBackedEngine(dir string, ecfg diskio.Config) (*Array, error) {
	return openFileBacked(dir, &ecfg)
}

func openFileBacked(dir string, ecfg *diskio.Config) (*Array, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("pdm: no manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("pdm: bad manifest: %w", err)
	}
	p := Params{D: m.D, B: m.B, M: m.M}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The persisted mode decides which I/O rule resumes: an AgV array
	// must not silently come back under PDM accounting (or vice versa).
	if m.Mode != ModePDM && m.Mode != ModeAgV {
		return nil, fmt.Errorf("pdm: manifest has unknown mode %d", m.Mode)
	}
	if len(m.NextFree) != p.D {
		return nil, fmt.Errorf("pdm: manifest has %d allocation marks for D=%d", len(m.NextFree), p.D)
	}
	files := make([]*os.File, p.D)
	written := make([]int, p.D)
	for i := range files {
		f, err := os.OpenFile(diskPath(dir, i), os.O_RDWR, 0)
		if err != nil {
			closeFiles(files[:i])
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			closeFiles(files[:i])
			return nil, err
		}
		files[i] = f
		written[i] = int(st.Size()) / (p.B * record.EncodedSize)
	}
	return assembleFileBacked(p, dir, m.Mode, ecfg, files, func(a *Array) {
		copy(a.nextFree, m.NextFree)
		for i, d := range a.disks {
			marks := make([]bool, written[i])
			for j := range marks {
				marks[j] = true
			}
			switch s := d.store.(type) {
			case *fileStore:
				s.written = marks
			case *engineStore:
				s.written = marks
			}
		}
	})
}

// assembleFileBacked builds the array over the opened files — plain
// fileStores when ecfg is nil, an engine mount otherwise — and arranges
// for Close to persist the manifest. init (if non-nil) restores resumed
// state before the array is returned.
func assembleFileBacked(p Params, dir string, mode Mode, ecfg *diskio.Config, files []*os.File, init func(*Array)) (*Array, error) {
	stores := make([]blockStore, p.D)
	var eng *diskio.Engine
	if ecfg != nil {
		cfg := *ecfg
		cfg.BlockBytes = p.B * record.EncodedSize
		devs := make([]diskio.Device, p.D)
		for i, f := range files {
			devs[i] = f
		}
		var err error
		eng, err = diskio.New(cfg, devs)
		if err != nil {
			closeFiles(files)
			return nil, err
		}
		for i := range stores {
			stores[i] = newEngineStore(p.B, i, eng)
		}
	} else {
		for i, f := range files {
			stores[i] = &fileStore{b: p.B, f: f}
		}
	}
	var a *Array
	a = newWithStores(p, mode, stores, func() error {
		// For engine mounts the per-store close() only flushed; closing
		// the engine stops the workers and closes the files, and must
		// precede the manifest write so its data is durable first.
		var firstErr error
		if eng != nil {
			firstErr = eng.Close()
		}
		if err := writeManifest(dir, p, mode, a.nextFree); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	})
	a.engine = eng
	if init != nil {
		init(a)
	}
	return a, nil
}

func closeFiles(files []*os.File) {
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
}

func writeManifest(dir string, p Params, mode Mode, nextFree []int) error {
	m := manifest{D: p.D, B: p.B, M: p.M, Mode: mode, NextFree: append([]int(nil), nextFree...)}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath(dir), raw, 0o644)
}
