package pdm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balancesort/internal/record"
)

func TestFileBackedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	want := block(a.B(), 9)
	a.ParallelIO([]Op{{Disk: 1, Off: 3, Write: true, Data: want}})
	got := make([]record.Record, a.B())
	a.ParallelIO([]Op{{Disk: 1, Off: 3, Data: got}})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file readback mismatch at %d", i)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The disk files and manifest exist on disk.
	if _, err := os.Stat(filepath.Join(dir, "disk001.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedStripeAndStats(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	data := record.Generate(record.Zipf, 200, 3)
	off := a.AllocStripe(8)
	a.WriteStripe(off, data)
	got := make([]record.Record, 200)
	a.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("stripe mismatch at %d", i)
		}
	}
	if s := a.Stats(); s.IOs == 0 {
		t.Fatal("file-backed array did not count I/Os")
	}
}

func TestFileBackedReadUnwrittenPanics(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("unwritten read did not panic")
		}
	}()
	a.ParallelIO([]Op{{Disk: 0, Off: 7, Data: make([]record.Record, a.B())}})
}

func TestFileBackedReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	data := record.Generate(record.Uniform, 64, 5)
	off := a.AllocStripe(2)
	a.WriteStripe(off, data)
	marker := a.Alloc(2, 1) // advance one disk's allocator asymmetrically
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenFileBacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Params() != testParams() {
		t.Fatalf("reopened params %+v", b.Params())
	}
	got := make([]record.Record, 64)
	b.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data lost across reopen at %d", i)
		}
	}
	// Allocation marks survived: fresh allocations do not collide.
	if next := b.Alloc(2, 1); next <= marker {
		t.Fatalf("allocator reset: got %d after %d", next, marker)
	}
}

// TestFileBackedModePersists checks the manifest records the model mode,
// so an AgV array cannot silently resume under PDM accounting.
func TestFileBackedModePersists(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBackedMode(testParams(), dir, ModeAgV)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode() != ModeAgV {
		t.Fatalf("created mode %v, want AgV", a.Mode())
	}
	// Two blocks on one disk in a single I/O: legal only under AgV.
	off := a.Alloc(0, 2)
	a.ParallelIO([]Op{
		{Disk: 0, Off: off, Write: true, Data: block(a.B(), 1)},
		{Disk: 0, Off: off + 1, Write: true, Data: block(a.B(), 2)},
	})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenFileBacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Mode() != ModeAgV {
		t.Fatalf("resumed mode %v, want AgV", b.Mode())
	}
	// The resumed array still accepts AgV-shaped I/Os.
	got := make([]record.Record, b.B())
	b.ParallelIO([]Op{
		{Disk: 0, Off: off, Data: got},
		{Disk: 0, Off: off + 1, Data: make([]record.Record, b.B())},
	})
	want := block(b.B(), 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AgV readback mismatch at %d", i)
		}
	}
}

func TestOpenFileBackedRejectsBadMode(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(strings.Replace(string(raw), `"mode": 0`, `"mode": 7`, 1))
	if string(bad) == string(raw) {
		t.Fatal("manifest has no mode field to corrupt")
	}
	if err := os.WriteFile(manifestPath(dir), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBacked(dir); err == nil {
		t.Fatal("unknown manifest mode accepted")
	}
}

func TestOpenFileBackedMissing(t *testing.T) {
	if _, err := OpenFileBacked(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rs := record.Generate(record.Uniform, 257, 7)
	buf := record.EncodeSlice(rs)
	if len(buf) != 257*record.EncodedSize {
		t.Fatalf("encoded size %d", len(buf))
	}
	back, err := record.DecodeSlice(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("codec mismatch at %d", i)
		}
	}
	if _, err := record.DecodeSlice(buf[:15]); err == nil {
		t.Fatal("ragged buffer accepted")
	}
}
