package pdm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"balancesort/internal/record"
)

// readRecovered performs one read I/O and returns the panic the array
// raised for it, if any — the store-error channel of ParallelIO.
func readRecovered(a *Array, disk, off int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	a.ParallelIO([]Op{{Disk: disk, Off: off, Data: make([]record.Record, a.B())}})
	return nil
}

// flipByte flips one byte of the file at the given offset.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumCatchesFlippedByte writes blocks, flips one data byte on
// disk, and checks the read surfaces a typed *CorruptBlockError while
// Scrub pinpoints exactly the damaged block.
func TestChecksumCatchesFlippedByte(t *testing.T) {
	for _, engine := range []bool{false, true} {
		t.Run(fmt.Sprintf("engine=%v", engine), func(t *testing.T) {
			dir := t.TempDir()
			var a *Array
			var err error
			if engine {
				a, err = NewFileBackedEngine(testParams(), dir, engineConfig())
			} else {
				a, err = NewFileBacked(testParams(), dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < 3; off++ {
				a.ParallelIO([]Op{{Disk: 2, Off: off, Write: true, Data: block(a.B(), uint64(off))}})
			}
			if err := a.Sync(); err != nil {
				t.Fatal(err)
			}

			blockBytes := a.B() * record.EncodedSize
			flipByte(t, filepath.Join(dir, "disk002.bin"), int64(blockBytes)+5) // block 1

			err = readRecovered(a, 2, 1)
			var corrupt *CorruptBlockError
			if !errors.As(err, &corrupt) {
				t.Fatalf("flipped byte read: got %v, want *CorruptBlockError", err)
			}
			if corrupt.Disk != 2 || corrupt.Block != 1 || corrupt.Want == corrupt.Got {
				t.Fatalf("bad corruption report: %+v", corrupt)
			}
			// Intact blocks still read fine.
			if err := readRecovered(a, 2, 0); err != nil {
				t.Fatalf("intact block read: %v", err)
			}

			rep := a.Scrub()
			if !rep.Checksummed || rep.BlocksChecked != 3 {
				t.Fatalf("scrub checked %d blocks (checksummed=%v), want 3", rep.BlocksChecked, rep.Checksummed)
			}
			if len(rep.Corrupt) != 1 || rep.Corrupt[0].Disk != 2 || rep.Corrupt[0].Block != 1 {
				t.Fatalf("scrub found %+v, want exactly disk 2 block 1", rep.Corrupt)
			}
			a.Close()
		})
	}
}

// TestScrubCleanArray checks a healthy array scrubs clean and that an
// overwrite re-checksums (no stale-sidecar false positives).
func TestScrubCleanArray(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for off := 0; off < 4; off++ {
		a.ParallelIO([]Op{{Disk: 0, Off: off, Write: true, Data: block(a.B(), uint64(off))}})
	}
	a.ParallelIO([]Op{{Disk: 0, Off: 2, Write: true, Data: block(a.B(), 99)}}) // overwrite
	rep := a.Scrub()
	if !rep.Checksummed || rep.BlocksChecked != 4 || len(rep.Corrupt) != 0 {
		t.Fatalf("clean scrub report: %+v", rep)
	}
}

// TestNoChecksumsOption checks NoChecksums leaves no sidecars and Scrub
// reports there is nothing to verify.
func TestNoChecksumsOption(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBackedOpts(testParams(), dir, FileOptions{NoChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Alloc(0, 1)
	a.ParallelIO([]Op{{Disk: 0, Off: 0, Write: true, Data: block(a.B(), 1)}})
	if rep := a.Scrub(); rep.Checksummed || rep.BlocksChecked != 0 {
		t.Fatalf("scrub of unchecksummed array: %+v", rep)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "disk000.crc")); !os.IsNotExist(err) {
		t.Fatal("NoChecksums still created a sidecar")
	}
	// The manifest records the choice and the array reopens without
	// demanding sidecars.
	b, err := OpenFileBacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := readRecovered(b, 0, 0); err != nil {
		t.Fatalf("reopen without checksums: %v", err)
	}
	b.Close()
}

// TestOpenRejectsTruncatedDisk checks OpenFileBacked validates per-disk
// file sizes against the manifest's write marks at open time.
func TestOpenRejectsTruncatedDisk(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBacked(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	blockBytes := a.B() * record.EncodedSize
	a.Alloc(1, 3)
	for off := 0; off < 3; off++ {
		a.ParallelIO([]Op{{Disk: 1, Off: off, Write: true, Data: block(a.B(), uint64(off))}})
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "disk001.bin")
	// Shorter than the recorded write mark: rejected with the typed error.
	if err := os.Truncate(path, int64(2*blockBytes)); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFileBacked(dir)
	var trunc *TruncatedDiskError
	if !errors.As(err, &trunc) {
		t.Fatalf("truncated disk open: got %v, want *TruncatedDiskError", err)
	}
	if trunc.Disk != 1 || trunc.WantBlocks != 3 {
		t.Fatalf("bad truncation report: %+v", trunc)
	}

	// A ragged (non-block-multiple) file is rejected even at full length.
	if err := os.Truncate(path, int64(3*blockBytes-7)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBacked(dir); !errors.As(err, &trunc) {
		t.Fatalf("ragged disk open: got %v, want *TruncatedDiskError", err)
	}

	// A truncated checksum sidecar is caught the same way.
	if err := os.Truncate(path, int64(3*blockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "disk001.crc"), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBacked(dir); !errors.As(err, &trunc) {
		t.Fatalf("truncated sidecar open: got %v, want *TruncatedDiskError", err)
	}
}

// TestManifestRejectsBadWrittenMarks checks ParseManifest validation.
func TestManifestRejectsBadWrittenMarks(t *testing.T) {
	good := Manifest{D: 2, B: 4, M: 64, NextFree: []int{3, 3}, Written: []int{2, 2}, Checksum: ChecksumCRC32C}
	raw, _ := json.Marshal(good)
	if _, err := ParseManifest(raw); err != nil {
		t.Fatalf("good manifest rejected: %v", err)
	}
	bad := []Manifest{
		{D: 2, B: 4, M: 64, NextFree: []int{3}},                          // wrong NextFree arity
		{D: 2, B: 4, M: 64, NextFree: []int{3, -1}},                      // negative mark
		{D: 2, B: 4, M: 64, NextFree: []int{3, 3}, Written: []int{2}},    // wrong Written arity
		{D: 2, B: 4, M: 64, NextFree: []int{3, 3}, Written: []int{4, 2}}, // written > allocated
		{D: 2, B: 4, M: 64, NextFree: []int{3, 3}, Checksum: "md5"},      // unknown algorithm
		{D: 2, B: 4, M: 64, NextFree: []int{3, 3}, Mode: 7},              // unknown mode
		{D: 0, B: 4, M: 64, NextFree: []int{}},                           // invalid params
		{D: 2, B: 4, M: 4, NextFree: []int{0, 0}},                        // DB > M/2
	}
	for i, m := range bad {
		raw, _ := json.Marshal(m)
		if _, err := ParseManifest(raw); err == nil {
			t.Fatalf("bad manifest %d accepted: %+v", i, m)
		}
	}
}

// TestJournalRoundTrip checks append/recover, sequence numbering, and the
// torn-tail truncation of OpenJournalAppend.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := JournalPath(dir)
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		seq, err := j.Append([]byte(fmt.Sprintf(`{"pass":%d}`, i)))
		if err != nil || seq != i {
			t.Fatalf("append %d: seq=%d err=%v", i, seq, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := LoadJournal(path)
	if err != nil || len(entries) != 3 {
		t.Fatalf("loaded %d entries, err=%v", len(entries), err)
	}
	if string(entries[2].Payload) != `{"pass":3}` {
		t.Fatalf("payload round trip: %s", entries[2].Payload)
	}

	// Simulate a crash mid-append: a torn final line is recovered away
	// and appends continue from the last good entry.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"pass\":4"); err != nil { // no newline, bad crc
		t.Fatal(err)
	}
	f.Close()

	j2, recovered, err := OpenJournalAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 || j2.Seq() != 3 {
		t.Fatalf("recovered %d entries, seq %d; want 3, 3", len(recovered), j2.Seq())
	}
	if seq, err := j2.Append([]byte(`{"pass":4}`)); err != nil || seq != 4 {
		t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
	}
	j2.Close()
	entries, err = LoadJournal(path)
	if err != nil || len(entries) != 4 {
		t.Fatalf("after recovery+append: %d entries, err=%v", len(entries), err)
	}
}

// TestJournalStopsAtCorruption checks a flipped byte in the middle of the
// journal ends the valid prefix there (last-good-entry-wins).
func TestJournalStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	path := JournalPath(dir)
	j, _ := CreateJournal(path)
	for i := 1; i <= 3; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf(`{"pass":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	flipByte(t, path, int64(len(lines[0])+12)) // inside entry 2
	entries, err := LoadJournal(path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("corrupted middle: %d entries, err=%v; want 1", len(entries), err)
	}
}

// TestNextFreeRestore checks the allocation marks round-trip through
// NextFree/SetNextFree, the journal's rollback primitive.
func TestNextFreeRestore(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	a.Alloc(0, 3)
	a.Alloc(2, 1)
	marks := a.NextFree()
	a.Alloc(0, 5)
	a.AllocStripe(2)
	a.SetNextFree(marks)
	if got := a.NextFree(); got[0] != 3 || got[1] != 0 || got[2] != 1 || got[3] != 0 {
		t.Fatalf("restored marks %v, want [3 0 1 0]", got)
	}
}

// FuzzManifest fuzzes the manifest parser with arbitrary bytes: it must
// never panic, and whatever it accepts must satisfy the invariants the
// rest of the package assumes.
func FuzzManifest(f *testing.F) {
	good, _ := json.Marshal(Manifest{D: 4, B: 8, M: 256, NextFree: []int{1, 2, 3, 4},
		Written: []int{1, 1, 1, 1}, Checksum: ChecksumCRC32C})
	f.Add(good)
	f.Add([]byte(`{"d":4,"b":8,"m":256,"next_free":[0,0,0,0]}`))
	f.Add([]byte(`{"d":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"d":4,"b":8,"m":256,"mode":9,"next_free":[0,0,0,0]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := ParseManifest(raw)
		if err != nil {
			return
		}
		if m.D < 1 || m.B < 1 || len(m.NextFree) != m.D {
			t.Fatalf("parser accepted invalid manifest: %+v", m)
		}
		if m.Written != nil && len(m.Written) != m.D {
			t.Fatalf("parser accepted bad write marks: %+v", m)
		}
	})
}

// FuzzJournal fuzzes the journal parser with arbitrary bytes: it must
// never panic, the valid prefix must re-parse to the same entries, and
// sequence numbers must come out dense from 1.
func FuzzJournal(f *testing.F) {
	dir := f.TempDir()
	j, _ := CreateJournal(JournalPath(dir))
	j.Append([]byte(`{"pass":1}`))
	j.Append([]byte(`{"pass":2}`))
	j.Close()
	good, _ := os.ReadFile(JournalPath(dir))
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	f.Add([]byte("deadbeef {}\n"))
	f.Add([]byte("00000000 \n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("zzzzzzzz {\"seq\":1,\"payload\":{}}\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, validLen := ParseJournal(raw)
		if validLen < 0 || validLen > len(raw) {
			t.Fatalf("valid prefix %d of %d bytes", validLen, len(raw))
		}
		for i, e := range entries {
			if e.Seq != i+1 {
				t.Fatalf("entry %d has seq %d", i, e.Seq)
			}
		}
		again, againLen := ParseJournal(raw[:validLen])
		if againLen != validLen || len(again) != len(entries) {
			t.Fatalf("valid prefix does not re-parse: %d/%d entries, %d/%d bytes",
				len(again), len(entries), againLen, validLen)
		}
	})
}
