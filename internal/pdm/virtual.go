package pdm

import (
	"fmt"

	"balancesort/internal/record"
)

// Virtual implements the paper's partial striping: the D physical disks are
// grouped into V "virtual disks" of D/V drives each, and a virtual block of
// B*D/V records is one physical block on each drive of the group, all at the
// same offset. Writing or reading at most one virtual block per virtual disk
// is then a single parallel I/O of the underlying array.
//
// Partial striping is what lets the deterministic balancing run fast enough:
// the balance matrices shrink from S x D to S x V while the I/O bound is
// unchanged up to a constant. (The hierarchy algorithm uses H' = H^{1/3}; the
// disk algorithm exposes V so experiments can sweep it.)
type Virtual struct {
	arr   *Array
	v     int // virtual disks
	group int // physical disks per virtual disk
}

// NewVirtual groups the array's D disks into v virtual disks. v must divide D.
func NewVirtual(a *Array, v int) *Virtual {
	if v < 1 || a.params.D%v != 0 {
		panic(fmt.Sprintf("pdm: %d virtual disks do not divide D = %d", v, a.params.D))
	}
	return &Virtual{arr: a, v: v, group: a.params.D / v}
}

// V returns the number of virtual disks.
func (vd *Virtual) V() int { return vd.v }

// VB returns the virtual block size in records.
func (vd *Virtual) VB() int { return vd.group * vd.arr.params.B }

// Array returns the underlying physical array.
func (vd *Virtual) Array() *Array { return vd.arr }

// VOp is one virtual-block transfer: exactly VB records at virtual offset
// Off on virtual disk VDisk.
type VOp struct {
	VDisk int
	Off   int
	Write bool
	Data  []record.Record
}

// ParallelVIO performs one parallel I/O transferring the given virtual
// blocks, at most one per virtual disk.
func (vd *Virtual) ParallelVIO(ops []VOp) {
	if len(ops) == 0 {
		return
	}
	seen := make(map[int]bool, len(ops))
	phys := make([]Op, 0, len(ops)*vd.group)
	b := vd.arr.params.B
	for _, op := range ops {
		if op.VDisk < 0 || op.VDisk >= vd.v {
			panic(fmt.Sprintf("pdm: virtual disk %d of %d", op.VDisk, vd.v))
		}
		if seen[op.VDisk] {
			panic(fmt.Sprintf("pdm: two virtual blocks on virtual disk %d in one I/O", op.VDisk))
		}
		seen[op.VDisk] = true
		if len(op.Data) != vd.VB() {
			panic(fmt.Sprintf("pdm: virtual op transfers %d records, virtual block size is %d", len(op.Data), vd.VB()))
		}
		for j := 0; j < vd.group; j++ {
			phys = append(phys, Op{
				Disk:  op.VDisk*vd.group + j,
				Off:   op.Off,
				Write: op.Write,
				Data:  op.Data[j*b : (j+1)*b],
			})
		}
	}
	vd.arr.ParallelIO(phys)
}

// Alloc reserves n fresh virtual-block offsets on virtual disk h, aligned
// across the group's physical disks, and returns the first offset.
func (vd *Virtual) Alloc(h, n int) int {
	lo := h * vd.group
	off := 0
	for j := 0; j < vd.group; j++ {
		if f := vd.arr.nextFree[lo+j]; f > off {
			off = f
		}
	}
	for j := 0; j < vd.group; j++ {
		vd.arr.nextFree[lo+j] = off + n
	}
	return off
}
