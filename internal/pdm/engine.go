package pdm

import (
	"fmt"
	"os"

	"balancesort/internal/diskio"
	"balancesort/internal/record"
)

// Engine-mounted backends: instead of serving each block synchronously on
// the disk goroutine, an engineStore hands the transfer to one disk of a
// diskio.Engine, gaining the engine's buffer pooling, read-ahead,
// write-behind coalescing, fault tolerance, and metrics. The cost model is
// untouched — parallel I/Os are still counted in ParallelIO, one layer up,
// and the one-block-per-disk rule is enforced before the engine ever sees
// a request — so an experiment measures identical model costs with the
// engine on or off.

// engineStore adapts one engine disk to the blockStore interface. When
// crc is non-nil the store maintains a CRC32C sidecar exactly like the
// synchronous fileStore: the checksum is computed host-side from the wire
// bytes handed to (or received from) the engine, so the model's parallel
// I/O accounting is untouched.
type engineStore struct {
	b       int
	disk    int
	eng     *diskio.Engine
	crc     *os.File // checksum sidecar; nil = checksums off
	written []bool
	scratch []byte // one block of wire-format bytes, reused per op
}

func newEngineStore(b, disk int, eng *diskio.Engine) *engineStore {
	return &engineStore{b: b, disk: disk, eng: eng, scratch: make([]byte, b*record.EncodedSize)}
}

func (s *engineStore) read(off int, dst []record.Record) error {
	if off >= len(s.written) || !s.written[off] {
		return fmt.Errorf("pdm: read of unwritten block off=%d", off)
	}
	if err := s.eng.Read(s.disk, int64(off), s.scratch); err != nil {
		return fmt.Errorf("pdm: engine read: %w", err)
	}
	if err := verifyCRC(s.crc, s.disk, off, s.scratch); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = record.Decode(s.scratch[i*record.EncodedSize:])
	}
	return nil
}

func (s *engineStore) write(off int, src []record.Record) error {
	buf := s.scratch[:0]
	for _, r := range src {
		buf = record.Encode(buf, r)
	}
	if err := s.eng.Write(s.disk, int64(off), buf); err != nil {
		return fmt.Errorf("pdm: engine write: %w", err)
	}
	if err := writeCRC(s.crc, off, buf); err != nil {
		return err
	}
	for off >= len(s.written) {
		s.written = append(s.written, false)
	}
	s.written[off] = true
	return nil
}

// close drains the disk's write-behind run; the devices themselves are
// closed by the engine (see the array's onClose), and the crc sidecar by
// the array's close hook.
func (s *engineStore) close() error { return s.eng.Flush(s.disk) }

func (s *engineStore) highWater() int { return len(s.written) }

func (s *engineStore) checksummed() bool { return s.crc != nil }

func (s *engineStore) verifyAll() (int, []*CorruptBlockError) {
	checked := 0
	var bad []*CorruptBlockError
	for off, w := range s.written {
		if !w {
			continue
		}
		if err := s.eng.Read(s.disk, int64(off), s.scratch); err != nil {
			bad = append(bad, &CorruptBlockError{Disk: s.disk, Block: off})
			checked++
			continue
		}
		if isAllocationHole(s.crc, off, s.scratch) {
			continue
		}
		checked++
		if err := verifyCRC(s.crc, s.disk, off, s.scratch); err != nil {
			if ce, ok := err.(*CorruptBlockError); ok {
				bad = append(bad, ce)
			}
		}
	}
	return checked, bad
}

// NewModeEngine creates an in-memory array in the given mode whose disks
// are served by a diskio.Engine over memory devices — the full engine
// stack (queues, prefetch, coalescing, faults, metrics) without touching
// the filesystem. Like NewMode it panics on invalid parameters.
func NewModeEngine(p Params, mode Mode, ecfg diskio.Config) *Array {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	ecfg.BlockBytes = p.B * record.EncodedSize
	devs := make([]diskio.Device, p.D)
	for i := range devs {
		devs[i] = diskio.NewMemDevice()
	}
	eng, err := diskio.New(ecfg, devs)
	if err != nil {
		panic(err)
	}
	stores := make([]blockStore, p.D)
	for i := range stores {
		stores[i] = newEngineStore(p.B, i, eng)
	}
	a := newWithStores(p, mode, stores, eng.Close)
	a.engine = eng
	return a
}

// IOMetrics snapshots the mounted engine's per-disk counters, or returns
// nil when the array runs without an engine.
func (a *Array) IOMetrics() *diskio.Snapshot {
	if a.engine == nil {
		return nil
	}
	snap := a.engine.Metrics()
	return &snap
}
