package pdm

import (
	"fmt"
	"sync"
)

// MemTracker enforces the internal-memory capacity M. Sorting algorithms
// charge every buffer they hold against the tracker with Use and return it
// with Release; exceeding the capacity panics, because an algorithm that
// overflows M is simply not an external-memory algorithm and every such
// overflow is a bug in this repository.
type MemTracker struct {
	mu       sync.Mutex
	capacity int
	used     int
	peak     int
}

// NewMemTracker returns a tracker with the given capacity in records.
func NewMemTracker(capacity int) *MemTracker {
	return &MemTracker{capacity: capacity}
}

// Use charges n records of internal memory.
func (m *MemTracker) Use(n int) {
	if n < 0 {
		panic("pdm: negative memory charge")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	if m.used > m.capacity {
		panic(fmt.Sprintf("pdm: internal memory overflow: %d used, capacity %d", m.used, m.capacity))
	}
}

// Release returns n records of internal memory.
func (m *MemTracker) Release(n int) {
	if n < 0 {
		panic("pdm: negative memory release")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used -= n
	if m.used < 0 {
		panic("pdm: memory released twice")
	}
}

// Used returns the current occupancy in records.
func (m *MemTracker) Used() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark in records.
func (m *MemTracker) Peak() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Capacity returns the tracker's capacity in records.
func (m *MemTracker) Capacity() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacity
}
