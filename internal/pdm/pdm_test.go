package pdm

import (
	"testing"

	"balancesort/internal/record"
)

func testParams() Params { return Params{D: 4, B: 8, M: 256} }

func block(b int, key uint64) []record.Record {
	blk := make([]record.Record, b)
	for i := range blk {
		blk[i] = record.Record{Key: key, Loc: uint64(i)}
	}
	return blk
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{D: 0, B: 8, M: 256},
		{D: 4, B: 0, M: 256},
		{D: 4, B: 8, M: 60}, // DB=32 > M/2=30
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v validated", p)
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	a := New(testParams())
	defer a.Close()

	want := block(a.B(), 7)
	a.ParallelIO([]Op{{Disk: 2, Off: 5, Write: true, Data: want}})

	got := make([]record.Record, a.B())
	a.ParallelIO([]Op{{Disk: 2, Off: 5, Data: got}})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readback mismatch at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestIOCounting(t *testing.T) {
	a := New(testParams())
	defer a.Close()

	// One parallel I/O writing 4 blocks, one reading 2.
	var ops []Op
	for d := 0; d < 4; d++ {
		ops = append(ops, Op{Disk: d, Off: 0, Write: true, Data: block(a.B(), uint64(d))})
	}
	a.ParallelIO(ops)
	a.ParallelIO([]Op{
		{Disk: 0, Off: 0, Data: make([]record.Record, a.B())},
		{Disk: 1, Off: 0, Data: make([]record.Record, a.B())},
	})

	s := a.Stats()
	if s.IOs != 2 {
		t.Fatalf("IOs = %d, want 2", s.IOs)
	}
	if s.BlocksWritten != 4 || s.BlocksRead != 2 {
		t.Fatalf("blocks written/read = %d/%d, want 4/2", s.BlocksWritten, s.BlocksRead)
	}
	if s.WriteIOs != 1 || s.ReadIOs != 1 {
		t.Fatalf("write/read IOs = %d/%d, want 1/1", s.WriteIOs, s.ReadIOs)
	}
	if s.PerDiskWrites[3] != 1 || s.PerDiskReads[0] != 1 {
		t.Fatalf("per-disk counters wrong: %+v", s)
	}
}

func TestEmptyIOIsFree(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	a.ParallelIO(nil)
	a.ParallelIO([]Op{})
	if s := a.Stats(); s.IOs != 0 {
		t.Fatalf("empty I/O was counted: %d", s.IOs)
	}
}

func TestPDMModeRejectsTwoBlocksSameDisk(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("two blocks on one disk did not panic in PDM mode")
		}
	}()
	a.ParallelIO([]Op{
		{Disk: 1, Off: 0, Write: true, Data: block(a.B(), 1)},
		{Disk: 1, Off: 1, Write: true, Data: block(a.B(), 2)},
	})
}

func TestAgVModeAllowsTwoBlocksSameDisk(t *testing.T) {
	a := NewMode(testParams(), ModeAgV)
	defer a.Close()
	a.ParallelIO([]Op{
		{Disk: 1, Off: 0, Write: true, Data: block(a.B(), 1)},
		{Disk: 1, Off: 1, Write: true, Data: block(a.B(), 2)},
	})
	if s := a.Stats(); s.IOs != 1 || s.BlocksWritten != 2 {
		t.Fatalf("AgV I/O miscounted: %+v", s)
	}
}

func TestTooManyOpsPanics(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("D+1 ops did not panic")
		}
	}()
	ops := make([]Op, 5)
	for i := range ops {
		ops[i] = Op{Disk: i % 4, Off: i, Write: true, Data: block(a.B(), 0)}
	}
	a.ParallelIO(ops)
}

func TestReadUnwrittenPanics(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("read of unwritten block did not panic")
		}
	}()
	a.ParallelIO([]Op{{Disk: 0, Off: 9, Data: make([]record.Record, a.B())}})
}

func TestWrongBlockSizePanics(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("short block did not panic")
		}
	}()
	a.ParallelIO([]Op{{Disk: 0, Off: 0, Write: true, Data: make([]record.Record, 3)}})
}

func TestStripeRoundTrip(t *testing.T) {
	a := New(testParams())
	defer a.Close()

	n := 100 // not a multiple of B*D: exercises padding
	data := record.Generate(record.Uniform, n, 1)
	off := a.AllocStripe(8)
	wios := a.WriteStripe(off, data)

	got := make([]record.Record, n)
	rios := a.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("stripe mismatch at %d", i)
		}
	}
	// 100 records, B=8 -> 13 blocks, D=4 -> 4 I/Os each way.
	if wios != 4 || rios != 4 {
		t.Fatalf("stripe I/Os = %d/%d, want 4/4", wios, rios)
	}
}

func TestAllocSeparateDisks(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	if off := a.Alloc(0, 3); off != 0 {
		t.Fatalf("first alloc at %d", off)
	}
	if off := a.Alloc(0, 2); off != 3 {
		t.Fatalf("second alloc at %d", off)
	}
	if off := a.Alloc(1, 1); off != 0 {
		t.Fatalf("disk 1 alloc at %d", off)
	}
}

func TestAllocStripeAligns(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	a.Alloc(2, 5)
	off := a.AllocStripe(2)
	if off != 5 {
		t.Fatalf("stripe alloc at %d, want 5", off)
	}
	if off2 := a.Alloc(0, 1); off2 != 7 {
		t.Fatalf("alloc after stripe at %d, want 7", off2)
	}
}

func TestResetStats(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	a.ParallelIO([]Op{{Disk: 0, Off: 0, Write: true, Data: block(a.B(), 0)}})
	a.ResetStats()
	if s := a.Stats(); s.IOs != 0 || s.BlocksWritten != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestMemTracker(t *testing.T) {
	m := NewMemTracker(100)
	m.Use(60)
	m.Use(30)
	if m.Used() != 90 || m.Peak() != 90 {
		t.Fatalf("used/peak = %d/%d", m.Used(), m.Peak())
	}
	m.Release(50)
	if m.Used() != 40 || m.Peak() != 90 {
		t.Fatalf("after release used/peak = %d/%d", m.Used(), m.Peak())
	}
	if m.Capacity() != 100 {
		t.Fatalf("capacity = %d", m.Capacity())
	}
}

func TestMemTrackerOverflowPanics(t *testing.T) {
	m := NewMemTracker(10)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	m.Use(11)
}

func TestMemTrackerDoubleReleasePanics(t *testing.T) {
	m := NewMemTracker(10)
	m.Use(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m.Release(6)
}

func TestVirtualRoundTrip(t *testing.T) {
	a := New(Params{D: 8, B: 4, M: 512})
	defer a.Close()
	vd := NewVirtual(a, 2)
	if vd.V() != 2 || vd.VB() != 16 {
		t.Fatalf("V/VB = %d/%d, want 2/16", vd.V(), vd.VB())
	}

	data0 := record.Generate(record.Uniform, vd.VB(), 1)
	data1 := record.Generate(record.Uniform, vd.VB(), 2)
	off0 := vd.Alloc(0, 1)
	off1 := vd.Alloc(1, 1)
	vd.ParallelVIO([]VOp{
		{VDisk: 0, Off: off0, Write: true, Data: data0},
		{VDisk: 1, Off: off1, Write: true, Data: data1},
	})
	if s := a.Stats(); s.IOs != 1 || s.BlocksWritten != 8 {
		t.Fatalf("virtual write: %+v", s)
	}

	got0 := make([]record.Record, vd.VB())
	got1 := make([]record.Record, vd.VB())
	vd.ParallelVIO([]VOp{
		{VDisk: 0, Off: off0, Data: got0},
		{VDisk: 1, Off: off1, Data: got1},
	})
	for i := range data0 {
		if got0[i] != data0[i] || got1[i] != data1[i] {
			t.Fatalf("virtual readback mismatch at %d", i)
		}
	}
}

func TestVirtualRejectsSameVDiskTwice(t *testing.T) {
	a := New(Params{D: 8, B: 4, M: 512})
	defer a.Close()
	vd := NewVirtual(a, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("two virtual blocks on one virtual disk did not panic")
		}
	}()
	d := make([]record.Record, vd.VB())
	vd.ParallelVIO([]VOp{
		{VDisk: 0, Off: 0, Write: true, Data: d},
		{VDisk: 0, Off: 1, Write: true, Data: d},
	})
}

func TestVirtualBadGroupingPanics(t *testing.T) {
	a := New(Params{D: 8, B: 4, M: 512})
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("non-divisor virtual count did not panic")
		}
	}()
	NewVirtual(a, 3)
}

func TestVirtualAllocAligns(t *testing.T) {
	a := New(Params{D: 8, B: 4, M: 512})
	defer a.Close()
	vd := NewVirtual(a, 2)
	// Disturb one member disk of virtual disk 0.
	a.Alloc(1, 4)
	off := vd.Alloc(0, 1)
	if off != 4 {
		t.Fatalf("virtual alloc at %d, want 4", off)
	}
	// Virtual disk 1 is unaffected.
	if off := vd.Alloc(1, 1); off != 0 {
		t.Fatalf("virtual disk 1 alloc at %d, want 0", off)
	}
}

func TestWidthHistogram(t *testing.T) {
	a := New(testParams())
	defer a.Close()
	var ops []Op
	for d := 0; d < 4; d++ {
		ops = append(ops, Op{Disk: d, Off: 0, Write: true, Data: block(a.B(), 0)})
	}
	a.ParallelIO(ops) // width 4, all-write
	a.ParallelIO(ops[:2])
	a.ParallelIO([]Op{
		{Disk: 0, Off: 0, Data: make([]record.Record, a.B())},
		{Disk: 1, Off: 0, Write: true, Data: block(a.B(), 1)},
	}) // mixed width 2

	s := a.Stats()
	if s.WidthHist[4] != 1 || s.WidthHist[2] != 2 {
		t.Fatalf("width hist wrong: %v", s.WidthHist)
	}
	if s.WriteWidthHist[4] != 1 || s.WriteWidthHist[2] != 1 {
		t.Fatalf("write width hist wrong: %v", s.WriteWidthHist)
	}
	util := s.Utilization(4)
	want := float64(4+2+2) / float64(3*4)
	if util != want {
		t.Fatalf("utilization = %v, want %v", util, want)
	}
	if f := s.WriteFullness(4, 1.0); f != 0.5 {
		t.Fatalf("full-width write fraction = %v, want 0.5", f)
	}
	if f := s.WriteFullness(4, 0.5); f != 1.0 {
		t.Fatalf("half-width write fraction = %v, want 1.0", f)
	}
}
