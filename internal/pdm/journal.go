package pdm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Sort-pass journal: an append-only file of checksummed JSON lines that
// records committed sort passes next to the manifest. Each line is
//
//	%08x <json>\n
//
// where the hex prefix is the CRC32C of the JSON bytes. A crash can only
// tear the final line (appends are sequential and each is fsynced before
// the commit is considered durable), so parsing stops at the first line
// that fails its checksum, has malformed JSON, or breaks the sequence —
// everything before it is the recovered journal, everything after is
// discarded. OpenJournalAppend physically truncates that torn tail so
// later appends extend a clean file.
//
// The journal is deliberately ignorant of what a "pass" is: entries carry
// opaque JSON payloads. The sorter's checkpoint schema lives with the
// sorter; this layer only guarantees ordered, checksummed, torn-tail-safe
// persistence.

// JournalEntry is one committed line: a 1-based sequence number and the
// writer's opaque payload.
type JournalEntry struct {
	Seq     int             `json:"seq"`
	Payload json.RawMessage `json:"payload"`
}

// Journal is an open journal file positioned for appending.
type Journal struct {
	f   *os.File
	seq int // last sequence number written
}

// CreateJournal creates (or truncates) a journal at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// OpenJournalAppend opens an existing journal, recovers its valid entries,
// truncates any torn tail left by a crash, and positions for appending.
func OpenJournalAppend(path string) (*Journal, []JournalEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	entries, validLen := ParseJournal(raw)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, err
	}
	if int64(validLen) < int64(len(raw)) {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f}
	if len(entries) > 0 {
		j.seq = entries[len(entries)-1].Seq
	}
	return j, entries, nil
}

// LoadJournal reads and parses the journal at path without opening it for
// writing.
func LoadJournal(path string) ([]JournalEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	entries, _ := ParseJournal(raw)
	return entries, nil
}

// ParseJournal recovers the valid entries from raw journal bytes along
// with the byte length of the valid prefix. It never panics: a line with
// a bad checksum, malformed JSON, a broken sequence number, or a missing
// newline ends the journal there, exactly as crash recovery requires.
func ParseJournal(raw []byte) ([]JournalEntry, int) {
	var entries []JournalEntry
	validLen := 0
	rest := raw
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn final line
		}
		line := rest[:nl]
		// 8 hex digits + space + at least "{}": anything shorter is torn.
		if len(line) < 11 || line[8] != ' ' {
			break
		}
		var want uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
			break
		}
		payload := line[9:]
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		var e JournalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			break
		}
		if e.Seq != len(entries)+1 || e.Payload == nil {
			break
		}
		entries = append(entries, e)
		validLen += nl + 1
		rest = rest[nl+1:]
	}
	return entries, validLen
}

// Append commits one payload: it assigns the next sequence number, writes
// the checksummed line, and fsyncs before returning, so a returned nil
// means the entry will survive a crash. It returns the assigned sequence
// number.
func (j *Journal) Append(payload []byte) (int, error) {
	// Compact via a round-trip so the stored line is valid single-line
	// JSON regardless of how the caller formatted the payload.
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return 0, fmt.Errorf("pdm: journal payload is not valid JSON: %w", err)
	}
	e := JournalEntry{Seq: j.seq + 1, Payload: json.RawMessage(compact.Bytes())}
	body, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum(body, castagnoli), body)
	if _, err := j.f.WriteString(line); err != nil {
		return 0, err
	}
	if err := j.f.Sync(); err != nil {
		return 0, err
	}
	j.seq = e.Seq
	return e.Seq, nil
}

// Seq returns the sequence number of the last entry written or recovered.
func (j *Journal) Seq() int { return j.seq }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// JournalPath returns the canonical journal location for a file-backed
// array directory, next to its manifest.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.log") }
