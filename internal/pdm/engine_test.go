package pdm

import (
	"testing"
	"time"

	"balancesort/internal/diskio"
	"balancesort/internal/record"
)

func engineConfig() diskio.Config {
	return diskio.Config{Prefetch: 2, WriteBehind: 4, RetryBase: 10 * time.Microsecond}
}

// TestEngineBackedStripeRoundTrip drives the full engine stack under an
// in-memory array: striped writes coalesce, striped reads prefetch, and
// the data survives.
func TestEngineBackedStripeRoundTrip(t *testing.T) {
	a := NewModeEngine(testParams(), ModePDM, engineConfig())
	defer a.Close()
	data := record.Generate(record.Zipf, 300, 3)
	off := a.AllocStripe(16)
	a.WriteStripe(off, data)
	got := make([]record.Record, 300)
	a.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("stripe mismatch at %d", i)
		}
	}
	if s := a.Stats(); s.IOs == 0 {
		t.Fatal("engine-backed array did not count model I/Os")
	}
	io := a.IOMetrics()
	if io == nil {
		t.Fatal("engine mounted but IOMetrics is nil")
	}
	if agg := io.Aggregate(); agg.BytesWritten == 0 {
		t.Fatal("engine moved no bytes")
	}
}

// TestEngineBackedModelCostsIdentical is the acceptance criterion that the
// engine cannot perturb the measurement instrument: the same op sequence
// produces byte-for-byte identical model stats with and without the
// engine.
func TestEngineBackedModelCostsIdentical(t *testing.T) {
	run := func(a *Array) Stats {
		defer a.Close()
		data := record.Generate(record.Uniform, 500, 9)
		off := a.AllocStripe(32)
		a.WriteStripe(off, data)
		got := make([]record.Record, 500)
		a.ReadStripe(off, got)
		a.ParallelIO([]Op{{Disk: 2, Off: off, Write: true, Data: make([]record.Record, a.B())}})
		return a.Stats()
	}
	plain := run(New(testParams()))
	engine := run(NewModeEngine(testParams(), ModePDM, engineConfig()))
	if plain.IOs != engine.IOs || plain.BlocksRead != engine.BlocksRead ||
		plain.BlocksWritten != engine.BlocksWritten ||
		plain.ReadIOs != engine.ReadIOs || plain.WriteIOs != engine.WriteIOs {
		t.Fatalf("model stats diverge:\nplain  %+v\nengine %+v", plain, engine)
	}
	for w := range plain.WidthHist {
		if plain.WidthHist[w] != engine.WidthHist[w] {
			t.Fatalf("width histogram diverges at %d", w)
		}
	}
}

// TestEngineBackedFaultsRecover checks an array under transient faults
// still serves every block correctly (the retry layer absorbs them below
// the model).
func TestEngineBackedFaultsRecover(t *testing.T) {
	cfg := engineConfig()
	cfg.Fault = diskio.FaultConfig{ErrorRate: 0.2, TornWriteRate: 0.5, Seed: 17}
	a := NewModeEngine(testParams(), ModePDM, cfg)
	defer a.Close()
	data := record.Generate(record.BucketSkew, 400, 5)
	off := a.AllocStripe(32)
	a.WriteStripe(off, data)
	got := make([]record.Record, 400)
	a.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data corrupted under faults at %d", i)
		}
	}
	if agg := a.IOMetrics().Aggregate(); agg.Faults == 0 {
		t.Fatal("fault layer inactive")
	}
}

// TestFileBackedEngineReopen is the crash/resume path through the engine:
// write blocks, Close (flushes the write-behind runs), reopen, compare.
func TestFileBackedEngineReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBackedEngine(testParams(), dir, engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.IOMetrics() == nil {
		t.Fatal("file-backed engine array has no engine metrics")
	}
	data := record.Generate(record.NearlySorted, 200, 21)
	off := a.AllocStripe(16)
	a.WriteStripe(off, data)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume synchronously: the bytes the engine coalesced must all be on
	// the platter.
	b, err := OpenFileBacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]record.Record, 200)
	b.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data lost across engine close/reopen at %d", i)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// And resume through the engine again.
	c, err := OpenFileBackedEngine(dir, engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got = make([]record.Record, 200)
	c.ReadStripe(off, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("engine reopen mismatch at %d", i)
		}
	}
}
