// Package pdm simulates the parallel disk model of Vitter and Shriver
// (Figure 2 of the paper): D physically distinct disks, each able to
// transfer one block of B contiguous records per parallel I/O, attached to
// an internal memory of capacity M records.
//
// The simulator is the measurement instrument for every disk experiment in
// this repository: it executes the real data movement in memory, serves
// each disk from its own goroutine (disks operate independently, as real
// drives do), counts parallel I/O operations, and enforces the model's two
// rules — at most one block per disk per I/O, and at most M records resident
// in internal memory. An AgV compatibility mode (Figure 1, the
// Aggarwal–Vitter model) relaxes the one-block-per-disk rule so the two
// models can be compared head to head (experiment E14).
package pdm

import (
	"fmt"
	"sync"

	"balancesort/internal/diskio"
	"balancesort/internal/record"
)

// Params fixes the model parameters for a disk array. The paper's
// constraints are M < N, 1 <= P <= M, and 1 <= DB <= M/2; constructors
// validate what they can locally (D, B, M) and sorters validate the rest.
type Params struct {
	D int // number of disks
	B int // records per block
	M int // records of internal memory
}

// Validate reports whether the parameters satisfy the model constraints
// that do not involve N.
func (p Params) Validate() error {
	if p.D < 1 {
		return fmt.Errorf("pdm: D = %d, want >= 1", p.D)
	}
	if p.B < 1 {
		return fmt.Errorf("pdm: B = %d, want >= 1", p.B)
	}
	if p.D*p.B > p.M/2 {
		return fmt.Errorf("pdm: DB = %d exceeds M/2 = %d", p.D*p.B, p.M/2)
	}
	return nil
}

// Mode selects which model's I/O rule the array enforces.
type Mode int

const (
	// ModePDM is the Vitter–Shriver parallel disk model: in one I/O each
	// disk transfers at most one block.
	ModePDM Mode = iota
	// ModeAgV is the Aggarwal–Vitter model: one I/O transfers any D blocks,
	// even if several live on the same disk.
	ModeAgV
)

// Op is one block transfer within a parallel I/O.
type Op struct {
	Disk  int  // which disk
	Off   int  // block offset on that disk
	Write bool // direction
	// Data is the source for a write (exactly B records) or the
	// destination for a read (exactly B records).
	Data []record.Record
}

// Stats is a snapshot of the array's I/O counters.
type Stats struct {
	IOs           int64 // parallel I/O operations
	ReadIOs       int64 // parallel I/Os that contained at least one read
	WriteIOs      int64 // parallel I/Os that contained at least one write
	BlocksRead    int64
	BlocksWritten int64
	PerDiskReads  []int64
	PerDiskWrites []int64
	// WidthHist[w] counts parallel I/Os that moved exactly w blocks
	// (w = 1..D); WriteWidthHist restricts to all-write I/Os. Together they
	// measure how close the algorithm runs to full-width, striped-looking
	// transfers — the property Section 6 highlights ("without need of
	// non-striped write operations").
	WidthHist      []int64
	WriteWidthHist []int64
}

// Utilization returns moved blocks per I/O slot, in [0, 1]: 1.0 means every
// parallel I/O used all D disks.
func (s Stats) Utilization(d int) float64 {
	if s.IOs == 0 {
		return 0
	}
	return float64(s.BlocksRead+s.BlocksWritten) / float64(s.IOs*int64(d))
}

// WriteFullness returns the fraction of all-write parallel I/Os that used
// at least frac of the disks.
func (s Stats) WriteFullness(d int, frac float64) float64 {
	total, wide := int64(0), int64(0)
	for w, c := range s.WriteWidthHist {
		total += c
		if float64(w) >= frac*float64(d) {
			wide += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wide) / float64(total)
}

// Array is a simulated array of D disks plus the internal-memory tracker.
type Array struct {
	params Params
	mode   Mode

	disks []*disk

	mu    sync.Mutex
	stats Stats

	// Mem tracks internal memory occupancy against params.M.
	Mem *MemTracker

	// nextFree[d] is the lowest never-allocated block offset on disk d.
	nextFree []int

	// engine is the diskio engine the stores are mounted on, nil when the
	// blocks are served synchronously (see engine.go and IOMetrics).
	engine *diskio.Engine

	onClose func() error

	// syncFn, when set (file-backed arrays), makes all written data durable
	// and persists a manifest consistent with it. See Sync.
	syncFn func() error
}

// blockStore is the storage behind one simulated drive. The in-memory
// store is the default; the file-backed store in file.go persists blocks to
// a real file so the library can sort datasets larger than host memory.
type blockStore interface {
	// read copies block off into dst (len dst = B); it errors on a block
	// that was never written.
	read(off int, dst []record.Record) error
	// write stores dst as block off.
	write(off int, src []record.Record) error
	close() error
}

// disk is a single simulated drive served by its own goroutine.
type disk struct {
	b      int
	store  blockStore
	reqs   chan diskReq
	done   chan struct{}
	reads  int64
	writes int64
}

// memStore keeps blocks in a growable slice.
type memStore struct {
	b      int
	blocks [][]record.Record
}

func (s *memStore) read(off int, dst []record.Record) error {
	if off >= len(s.blocks) || s.blocks[off] == nil {
		return fmt.Errorf("pdm: read of unwritten block off=%d", off)
	}
	copy(dst, s.blocks[off])
	return nil
}

func (s *memStore) write(off int, src []record.Record) error {
	for off >= len(s.blocks) {
		s.blocks = append(s.blocks, nil)
	}
	blk := s.blocks[off]
	if blk == nil {
		blk = make([]record.Record, s.b)
		s.blocks[off] = blk
	}
	copy(blk, src)
	return nil
}

func (s *memStore) close() error { return nil }

type diskReq struct {
	ops   []Op // all for this disk
	reply chan<- error
}

// New creates a disk array with the given parameters in PDM mode.
// It panics if the parameters are invalid; model parameters are chosen by
// the programmer, not by runtime input.
func New(p Params) *Array {
	return NewMode(p, ModePDM)
}

// NewMode creates a disk array enforcing the given model's I/O rule.
func NewMode(p Params, mode Mode) *Array {
	stores := make([]blockStore, p.D)
	for i := range stores {
		stores[i] = &memStore{b: p.B}
	}
	return newWithStores(p, mode, stores, nil)
}

// newWithStores wires an array over the given per-disk stores; onClose (if
// non-nil) runs after the disk goroutines stop.
func newWithStores(p Params, mode Mode, stores []blockStore, onClose func() error) *Array {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &Array{
		params:   p,
		mode:     mode,
		disks:    make([]*disk, p.D),
		nextFree: make([]int, p.D),
		Mem:      NewMemTracker(p.M),
		onClose:  onClose,
	}
	a.stats.PerDiskReads = make([]int64, p.D)
	a.stats.PerDiskWrites = make([]int64, p.D)
	a.stats.WidthHist = make([]int64, p.D+1)
	a.stats.WriteWidthHist = make([]int64, p.D+1)
	for i := range a.disks {
		d := &disk{
			b:     p.B,
			store: stores[i],
			reqs:  make(chan diskReq),
			done:  make(chan struct{}),
		}
		a.disks[i] = d
		go d.serve()
	}
	return a
}

// Params returns the model parameters of the array.
func (a *Array) Params() Params { return a.params }

// Mode returns which model's I/O rule the array enforces.
func (a *Array) Mode() Mode { return a.mode }

// Close stops the per-disk server goroutines and releases the backing
// stores (for file-backed arrays this persists the manifest). The array
// must not be used afterwards.
func (a *Array) Close() error {
	var firstErr error
	for _, d := range a.disks {
		close(d.reqs)
		<-d.done
		if err := d.store.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if a.onClose != nil {
		if err := a.onClose(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync makes everything written so far durable and rewrites the manifest
// to match — the commit primitive the sort-pass journal builds on. On a
// purely in-memory array it is a no-op. The ordering matters for crash
// consistency: data and checksums are fsynced before the manifest names
// them, so an on-disk manifest never describes blocks that are not there.
// Like Peek, it must not be called while a ParallelIO is in flight.
func (a *Array) Sync() error {
	if a.syncFn == nil {
		return nil
	}
	return a.syncFn()
}

// NextFree returns a copy of the per-disk allocation marks (the lowest
// never-allocated block offset on each disk).
func (a *Array) NextFree() []int {
	return append([]int(nil), a.nextFree...)
}

// SetNextFree restores the per-disk allocation marks, e.g. from a journal
// entry when resuming a sort: blocks the crashed run allocated after its
// last commit are handed out again and simply overwritten.
func (a *Array) SetNextFree(marks []int) {
	if len(marks) != len(a.nextFree) {
		panic(fmt.Sprintf("pdm: %d allocation marks for D=%d", len(marks), len(a.nextFree)))
	}
	copy(a.nextFree, marks)
}

// scrubbable is implemented by stores that maintain block checksums.
type scrubbable interface {
	highWater() int
	checksummed() bool
	// verifyAll re-reads every written block, returning how many were
	// checked and the ones whose checksum did not match.
	verifyAll() (int, []*CorruptBlockError)
}

// ScrubReport summarises a full-array integrity sweep.
type ScrubReport struct {
	// Checksummed is false when the array has no checksums to verify (an
	// in-memory array, or a file-backed one created with NoChecksums).
	Checksummed bool
	// BlocksChecked counts the written blocks that were re-read and
	// verified across all disks.
	BlocksChecked int
	// Corrupt lists every block whose data disagreed with its checksum.
	Corrupt []*CorruptBlockError
}

// Scrub walks every written block on every disk and verifies it against
// its stored checksum, without touching model I/O accounting. Like Peek,
// it must not run concurrently with a ParallelIO; on an engine-mounted
// array call Sync first so write-behind data has reached the device.
func (a *Array) Scrub() ScrubReport {
	var rep ScrubReport
	for _, d := range a.disks {
		s, ok := d.store.(scrubbable)
		if !ok || !s.checksummed() {
			continue
		}
		rep.Checksummed = true
		n, bad := s.verifyAll()
		rep.BlocksChecked += n
		rep.Corrupt = append(rep.Corrupt, bad...)
	}
	return rep
}

// writtenMarks returns the per-disk write high-water marks in blocks, for
// the manifest.
func (a *Array) writtenMarks() []int {
	marks := make([]int, len(a.disks))
	for i, d := range a.disks {
		if s, ok := d.store.(interface{ highWater() int }); ok {
			marks[i] = s.highWater()
		}
	}
	return marks
}

func (d *disk) serve() {
	defer close(d.done)
	for req := range d.reqs {
		var err error
		for _, op := range req.ops {
			if err = d.execute(op); err != nil {
				break
			}
		}
		req.reply <- err
	}
}

func (d *disk) execute(op Op) error {
	if len(op.Data) != d.b {
		return fmt.Errorf("pdm: op transfers %d records, block size is %d", len(op.Data), d.b)
	}
	if op.Write {
		if err := d.store.write(op.Off, op.Data); err != nil {
			return err
		}
		d.writes++
		return nil
	}
	// Reading a never-written block is almost always a bug in the caller,
	// so the store fails loudly (the error becomes a panic in ParallelIO).
	if err := d.store.read(op.Off, op.Data); err != nil {
		return err
	}
	d.reads++
	return nil
}

// ParallelIO performs one parallel I/O consisting of the given block
// transfers. In ModePDM at most one op may address each disk; in ModeAgV at
// most D ops are allowed in total. A nil or empty op list is a no-op that
// costs nothing.
func (a *Array) ParallelIO(ops []Op) {
	if len(ops) == 0 {
		return
	}
	if len(ops) > a.params.D {
		panic(fmt.Sprintf("pdm: %d ops in one I/O, model allows at most D = %d", len(ops), a.params.D))
	}
	perDisk := make(map[int][]Op, len(ops))
	for _, op := range ops {
		if op.Disk < 0 || op.Disk >= a.params.D {
			panic(fmt.Sprintf("pdm: op addresses disk %d of %d", op.Disk, a.params.D))
		}
		if a.mode == ModePDM && len(perDisk[op.Disk]) > 0 {
			panic(fmt.Sprintf("pdm: two blocks on disk %d in one I/O (PDM mode)", op.Disk))
		}
		perDisk[op.Disk] = append(perDisk[op.Disk], op)
	}

	replies := make(chan error, len(perDisk))
	for diskID, dops := range perDisk {
		a.disks[diskID].reqs <- diskReq{ops: dops, reply: replies}
	}
	var firstErr error
	for range perDisk {
		if err := <-replies; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		panic(firstErr)
	}

	a.mu.Lock()
	a.stats.IOs++
	hasRead, hasWrite := false, false
	for _, op := range ops {
		if op.Write {
			hasWrite = true
			a.stats.BlocksWritten++
			a.stats.PerDiskWrites[op.Disk]++
		} else {
			hasRead = true
			a.stats.BlocksRead++
			a.stats.PerDiskReads[op.Disk]++
		}
	}
	if hasRead {
		a.stats.ReadIOs++
	}
	if hasWrite {
		a.stats.WriteIOs++
	}
	width := len(ops)
	if width > a.params.D {
		width = a.params.D // AgV mode can exceed D only per-disk, not total
	}
	a.stats.WidthHist[width]++
	if hasWrite && !hasRead {
		a.stats.WriteWidthHist[width]++
	}
	a.mu.Unlock()
}

// IOCounts returns the scalar model-I/O tallies without copying the
// per-disk histograms — cheap enough for per-span resource attribution to
// call on every span open and close.
func (a *Array) IOCounts() (ios, blocksRead, blocksWritten int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats.IOs, a.stats.BlocksRead, a.stats.BlocksWritten
}

// Stats returns a snapshot of the I/O counters.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.PerDiskReads = append([]int64(nil), a.stats.PerDiskReads...)
	s.PerDiskWrites = append([]int64(nil), a.stats.PerDiskWrites...)
	s.WidthHist = append([]int64(nil), a.stats.WidthHist...)
	s.WriteWidthHist = append([]int64(nil), a.stats.WriteWidthHist...)
	return s
}

// ResetStats zeroes the I/O counters (allocation state is kept).
func (a *Array) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{
		PerDiskReads:   make([]int64, a.params.D),
		PerDiskWrites:  make([]int64, a.params.D),
		WidthHist:      make([]int64, a.params.D+1),
		WriteWidthHist: make([]int64, a.params.D+1),
	}
}

// Peek returns a copy of one block without counting any I/O. It is the
// simulator's measurement channel — verification sweeps and displacement
// measurements use it so that observing the data does not perturb the cost
// being measured. It must not be called while a ParallelIO is in flight.
func (a *Array) Peek(d, off int) []record.Record {
	if d < 0 || d >= a.params.D {
		panic(fmt.Sprintf("pdm: peek at disk %d of %d", d, a.params.D))
	}
	dst := make([]record.Record, a.params.B)
	if err := a.disks[d].store.read(off, dst); err != nil {
		panic(err)
	}
	return dst
}

// Alloc reserves n fresh blocks on disk d and returns the offset of the
// first. The simulator never reuses freed space; regions are cheap.
func (a *Array) Alloc(d, n int) int {
	off := a.nextFree[d]
	a.nextFree[d] += n
	return off
}

// AllocStripe reserves n fresh block offsets valid on every disk (the same
// offset range on all D disks) and returns the first offset.
func (a *Array) AllocStripe(n int) int {
	off := 0
	for _, f := range a.nextFree {
		if f > off {
			off = f
		}
	}
	for d := range a.nextFree {
		a.nextFree[d] = off + n
	}
	return off
}

// WriteStripe writes len(data)/B blocks striped across the disks starting
// at block offset off: block i goes to disk i%D at offset off + i/D. Records
// beyond the last full block are padded with +inf sentinels the caller must
// track. It returns the number of parallel I/Os used.
func (a *Array) WriteStripe(off int, data []record.Record) int {
	b, d := a.params.B, a.params.D
	nblocks := (len(data) + b - 1) / b
	ios := 0
	for base := 0; base < nblocks; base += d {
		var ops []Op
		for j := 0; j < d && base+j < nblocks; j++ {
			blk := make([]record.Record, b)
			lo := (base + j) * b
			hi := lo + b
			if hi > len(data) {
				hi = len(data)
			}
			copy(blk, data[lo:hi])
			for k := hi - lo; k < b; k++ {
				blk[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)} // sentinel pad
			}
			ops = append(ops, Op{Disk: j, Off: off + base/d, Write: true, Data: blk})
		}
		a.ParallelIO(ops)
		ios++
	}
	return ios
}

// ReadStripe reads n records striped from block offset off (the layout
// written by WriteStripe) and returns the parallel I/O count.
func (a *Array) ReadStripe(off int, dst []record.Record) int {
	b, d := a.params.B, a.params.D
	nblocks := (len(dst) + b - 1) / b
	ios := 0
	for base := 0; base < nblocks; base += d {
		var ops []Op
		bufs := make([][]record.Record, 0, d)
		for j := 0; j < d && base+j < nblocks; j++ {
			bb := make([]record.Record, b)
			bufs = append(bufs, bb)
			ops = append(ops, Op{Disk: j, Off: off + base/d, Data: bb})
		}
		a.ParallelIO(ops)
		ios++
		for j, bb := range bufs {
			lo := (base + j) * b
			hi := lo + b
			if hi > len(dst) {
				hi = len(dst)
			}
			copy(dst[lo:hi], bb[:hi-lo])
		}
	}
	return ios
}

// D returns the number of disks.
func (a *Array) D() int { return a.params.D }

// B returns the block size in records.
func (a *Array) B() int { return a.params.B }

// M returns the internal memory capacity in records.
func (a *Array) M() int { return a.params.M }
