package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"balancesort"
	"balancesort/internal/obs"
)

// Cancellation causes: runJob reads context.Cause to tell a client cancel
// (job → canceled) from a drain or kill (job left resumable on disk).
var (
	errCanceledByUser = errors.New("jobs: canceled by client")
	errDrained        = errors.New("jobs: server draining")
	errKilled         = errors.New("jobs: server killed")
)

// Options configures a job server.
type Options struct {
	// DataDir is the durable root: per-job directories (manifest, input,
	// scratch, output) live under DataDir/jobs, upload staging under
	// DataDir/tmp. Required.
	DataDir string
	// Workers bounds concurrently running sorts. Default 2.
	Workers int
	// Budget is the admission envelope. Zero fields default to 1 GiB of
	// memory and 16 GiB of disk.
	Budget Budget
	// Quota bounds each tenant. Zero fields are unlimited.
	Quota Quota
	// TenantWeights sets per-tenant fair-queueing weights (default 1).
	TenantWeights map[string]int
	// Sort is the base engine configuration jobs inherit; per-job
	// parameters (disks, block size, memory, buckets, engine) override it.
	Sort balancesort.Config
	// Cluster lists worker addresses for cluster-backed jobs (SortParams.
	// Cluster). Empty refuses such jobs at submission. The workers must
	// outlive the server: a cluster job's coordinator journal lands in the
	// job's scratch directory, and a restarted server resumes the job
	// against the same workers' parked shards.
	Cluster []string
	// ClusterHeartbeat tunes the coordinator failure detector for
	// cluster-backed jobs; the zero value is the cluster default.
	ClusterHeartbeat balancesort.ClusterHeartbeat
	// Logf receives operational log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Budget.MemoryBytes == 0 {
		o.Budget.MemoryBytes = 1 << 30
	}
	if o.Budget.DiskBytes == 0 {
		o.Budget.DiskBytes = 16 << 30
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// Disk-reservation model, in multiples of the input size: the scratch
// array holds the records plus per-pass distribution regions (estimated
// at scratchDiskFactor), and the sorted output is exactly input-sized.
// These are admission estimates, not enforced limits.
const (
	scratchDiskFactor = 3
	recordSize        = balancesort.RecordSize
)

// job is the in-memory state of one job; the durable subset is man.
type job struct {
	mu     sync.Mutex
	man    Manifest
	prog   *progress
	cancel context.CancelCauseFunc // set while running
	done   chan struct{}           // closed on reaching a terminal state
}

func (j *job) snapshotStatus() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.man.ID, Tenant: j.man.Tenant, State: j.man.State,
		Records: j.man.Records, InputBytes: j.man.InputBytes,
		Params:        j.man.Params,
		SubmittedUnix: j.man.SubmittedUnix, StartedUnix: j.man.StartedUnix, FinishedUnix: j.man.FinishedUnix,
		Error: j.man.Error, ErrorCode: j.man.ErrorCode,
		IOs: j.man.IOs, SortPasses: j.man.SortPasses, Resumes: j.man.Resumes,
	}
	if j.man.State == StateRunning && j.prog != nil {
		p := j.prog.snapshot()
		st.Progress = &p
	}
	return st
}

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID            string            `json:"id"`
	Tenant        string            `json:"tenant"`
	State         string            `json:"state"`
	Records       int               `json:"records"`
	InputBytes    int64             `json:"input_bytes"`
	Params        SortParams        `json:"params"`
	SubmittedUnix int64             `json:"submitted_unix"`
	StartedUnix   int64             `json:"started_unix,omitempty"`
	FinishedUnix  int64             `json:"finished_unix,omitempty"`
	Progress      *ProgressSnapshot `json:"progress,omitempty"`
	Error         string            `json:"error,omitempty"`
	ErrorCode     string            `json:"error_code,omitempty"`
	IOs           int64             `json:"ios,omitempty"`
	SortPasses    int               `json:"sort_passes,omitempty"`
	Resumes       int               `json:"resumes,omitempty"`
}

// Server is the multi-tenant sort-as-a-service front end. Create with
// New (which also recovers any jobs a previous process left behind),
// serve its Handler (or call Start), and stop with Drain for a graceful
// shutdown or Kill for an abrupt one.
type Server struct {
	opt     Options
	jobsDir string
	tmpDir  string
	sched   *Scheduler
	obs     *obs.Server
	obsWrap *balancesort.ObsServer
	mux     *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int64
	draining bool
	killed   bool
	counters struct {
		submitted, completed, failed, canceled, resumed int64
	}

	runCtx       context.Context
	stopDispatch context.CancelFunc
	wg           sync.WaitGroup

	httpMu sync.Mutex
	httpLn net.Listener
	http   *http.Server
}

// New creates a job server over opt.DataDir, recovers every job a
// previous process left there (terminal jobs keep serving their outputs;
// queued and in-flight jobs are re-queued, in their original admission
// order, and resume from their pass journals when one exists), and
// starts the worker pool. The HTTP side starts separately (Start or
// Handler).
func New(opt Options) (*Server, error) {
	opt.fill()
	if opt.DataDir == "" {
		return nil, errors.New("jobs: Options.DataDir is required")
	}
	s := &Server{
		opt:     opt,
		jobsDir: filepath.Join(opt.DataDir, "jobs"),
		tmpDir:  filepath.Join(opt.DataDir, "tmp"),
		sched:   NewScheduler(opt.Budget, opt.Quota),
		obs:     obs.NewServer(),
		jobs:    make(map[string]*job),
	}
	s.obsWrap = balancesort.WrapObsServer(s.obs)
	if err := os.MkdirAll(s.jobsDir, 0o755); err != nil {
		return nil, err
	}
	// Upload staging is transient: anything left is from a dead process.
	os.RemoveAll(s.tmpDir)
	if err := os.MkdirAll(s.tmpDir, 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.obs.AddSource(s.metrics)
	s.mux = http.NewServeMux()
	s.routes(s.mux)
	s.runCtx, s.stopDispatch = context.WithCancel(context.Background())
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover scans the data directory and rebuilds the registry and the
// scheduler's reservations from the checksummed manifests.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return err
	}
	var pending []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.jobsDir, e.Name())
		man, err := ReadManifest(dir)
		if err != nil {
			// A corrupt manifest is quarantined, not trusted and not
			// deleted: the operator decides.
			s.opt.Logf("jobs: skipping %s: %v", dir, err)
			continue
		}
		j := &job{man: *man, prog: &progress{}, done: make(chan struct{})}
		s.jobs[man.ID] = j
		if n, err := strconv.ParseInt(man.ID[1:], 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
		switch man.State {
		case StateDone:
			close(j.done)
			s.sched.Restore(man.Tenant, man.RetainBytes)
		case StateFailed, StateCanceled:
			close(j.done)
		case StateQueued, StateRunning:
			pending = append(pending, j)
		default:
			s.opt.Logf("jobs: %s has unknown state %q; leaving it alone", man.ID, man.State)
			close(j.done)
		}
	}
	// Re-queue interrupted work in original admission order. A job found
	// "running" was in flight when the process died: its scratch journal
	// (when it reached a commit) carries the resume point, so it goes back
	// to queued and picks up from there on dispatch.
	sort.Slice(pending, func(i, k int) bool { return pending[i].man.Seq < pending[k].man.Seq })
	for _, j := range pending {
		if j.man.State == StateRunning {
			j.man.State = StateQueued
			j.man.Resumes++
			s.mu.Lock()
			s.counters.resumed++
			s.mu.Unlock()
			if err := WriteManifest(s.jobDir(j.man.ID), &j.man); err != nil {
				s.opt.Logf("jobs: %s: %v", j.man.ID, err)
			}
		}
		s.sched.Readmit(&Ticket{
			ID: j.man.ID, Tenant: j.man.Tenant,
			MemBytes: j.man.MemBytes, DiskBytes: j.man.DiskBytes,
			Weight: j.man.Weight,
		})
		s.opt.Logf("jobs: recovered %s (%s, tenant %s)", j.man.ID, j.man.State, j.man.Tenant)
	}
	return nil
}

func (s *Server) jobDir(id string) string { return filepath.Join(s.jobsDir, id) }

func (s *Server) lookup(id, tenant string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.man.Tenant != tenant {
		return nil
	}
	return j
}

func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.killed
}

// worker is one slot of the bounded pool: it pulls tickets in the
// scheduler's weighted-fair order until dispatch stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, err := s.sched.Next(s.runCtx)
		if err != nil {
			return
		}
		s.runJob(t)
	}
}

// runJob runs one dispatched job end to end: mark it running, sort (or
// resume) with the journal on, and land it in a terminal state — unless
// the server is draining or killed, in which case the job is left
// resumable on disk exactly as the journal last committed it.
func (s *Server) runJob(t *Ticket) {
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		return
	}
	j := s.jobs[t.ID]
	if j == nil {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel(nil)

	dir := s.jobDir(t.ID)
	scratch := filepath.Join(dir, "scratch")
	outPath := filepath.Join(dir, "output.bin")

	j.mu.Lock()
	j.man.State = StateRunning
	j.man.StartedUnix = time.Now().Unix()
	inPath := j.man.LocalInput
	if inPath == "" {
		inPath = filepath.Join(dir, "input.bin")
	}
	man := j.man
	j.mu.Unlock()
	if err := WriteManifest(dir, &man); err != nil {
		s.opt.Logf("jobs: %s: %v", t.ID, err)
	}

	oc := balancesort.ObsConfig{
		Observer:     j.prog,
		SpanCapacity: 512,
		Server:       s.obsWrap,
		ServerKey:    "job-" + t.ID,
	}

	var ios int64
	var passes int
	var err error
	if man.Params.Cluster {
		err = s.runClusterJob(ctx, inPath, outPath, scratch, &man, oc)
	} else {
		cfg := s.opt.Sort
		cfg.Disks = man.Params.Disks
		cfg.BlockSize = man.Params.BlockSize
		cfg.Memory = man.Params.Memory
		cfg.Buckets = man.Params.Buckets
		cfg.IO.Engine = man.Params.Engine
		cfg.Engine = balancesort.Engine(man.Params.SortEngine)
		cfg.Robust.Journal = true
		cfg.Obs = oc

		var res *balancesort.Result
		if commits, jerr := balancesort.JournalCommits(scratch); jerr == nil && commits > 0 {
			// An earlier run of this job committed state; continue it.
			res, err = balancesort.ResumeSortFileContext(ctx, inPath, outPath, scratch, cfg)
		} else {
			// Fresh start (also the crashed-before-first-commit path: the
			// input file is still the source of truth, so wipe and redo).
			if rmErr := os.RemoveAll(scratch); rmErr != nil {
				err = rmErr
			} else if mkErr := os.MkdirAll(scratch, 0o755); mkErr != nil {
				err = mkErr
			} else {
				res, err = balancesort.SortFileContext(ctx, inPath, outPath, scratch, cfg)
			}
		}
		if res != nil {
			ios, passes = res.IOs, res.Passes
		}
	}

	if err == nil {
		// Success: the output is the only artifact worth keeping; the
		// scratch array and an uploaded input copy go back to the pool.
		os.RemoveAll(scratch)
		if man.LocalInput == "" {
			os.Remove(filepath.Join(dir, "input.bin"))
		}
		j.mu.Lock()
		j.man.State = StateDone
		j.man.FinishedUnix = time.Now().Unix()
		j.man.IOs = ios
		j.man.SortPasses = passes
		man = j.man
		j.mu.Unlock()
		if werr := WriteManifest(dir, &man); werr != nil {
			s.opt.Logf("jobs: %s: %v", t.ID, werr)
		}
		s.mu.Lock()
		s.counters.completed++
		s.mu.Unlock()
		s.sched.EndJob(t, true, man.DiskBytes-man.RetainBytes)
		close(j.done)
		return
	}

	switch cause := context.Cause(ctx); {
	case errors.Is(cause, errDrained), errors.Is(cause, errKilled):
		// The server is going down. Touch nothing: the manifest says
		// running, the journal holds the last committed pass, and the next
		// process re-queues and resumes the job. This is the crash-
		// consistency contract, exercised deliberately by Kill.
		return
	case errors.Is(cause, errCanceledByUser):
		s.removeJobFiles(dir, man.LocalInput == "")
		j.mu.Lock()
		j.man.State = StateCanceled
		j.man.FinishedUnix = time.Now().Unix()
		man = j.man
		j.mu.Unlock()
		if werr := WriteManifest(dir, &man); werr != nil {
			s.opt.Logf("jobs: %s: %v", t.ID, werr)
		}
		s.mu.Lock()
		s.counters.canceled++
		s.mu.Unlock()
		s.sched.EndJob(t, true, man.DiskBytes)
		close(j.done)
		return
	default:
		status, code := Classify(err)
		s.removeJobFiles(dir, man.LocalInput == "")
		j.mu.Lock()
		j.man.State = StateFailed
		j.man.FinishedUnix = time.Now().Unix()
		j.man.Error = err.Error()
		j.man.ErrorCode = code
		man = j.man
		j.mu.Unlock()
		if werr := WriteManifest(dir, &man); werr != nil {
			s.opt.Logf("jobs: %s: %v", t.ID, werr)
		}
		s.opt.Logf("jobs: %s failed (%d %s): %v", t.ID, status, code, err)
		s.mu.Lock()
		s.counters.failed++
		s.mu.Unlock()
		s.sched.EndJob(t, true, man.DiskBytes)
		close(j.done)
		return
	}
}

// runClusterJob runs (or resumes) one cluster-backed job. The coordinator's
// phase-commit journal lives in the job's scratch directory, so the same
// crash-consistency contract as the local engine holds: if this server dies
// mid-job, the restarted server finds the journal and resumes the sort
// against the workers' parked shards instead of starting over.
func (s *Server) runClusterJob(ctx context.Context, inPath, outPath, scratch string, man *Manifest, oc balancesort.ObsConfig) error {
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return err
	}
	journal := filepath.Join(scratch, "cluster.journal")
	ccfg := balancesort.ClusterConfig{
		Workers:     s.opt.Cluster,
		Buckets:     man.Params.Buckets,
		Heartbeat:   s.opt.ClusterHeartbeat,
		JournalPath: journal,
	}
	ccfg.Obs = oc
	if _, err := os.Stat(journal); err == nil {
		_, rerr := balancesort.ResumeClusterSortFile(ctx, inPath, outPath, ccfg)
		if rerr == nil {
			s.opt.Logf("jobs: %s resumed its cluster sort from %s", man.ID, journal)
			return nil
		}
		if !errors.Is(rerr, balancesort.ErrNoJournaledStart) {
			return rerr
		}
		// The coordinator died before journaling a start; the input is
		// still the source of truth, so wipe the stub and run fresh.
		if err := os.Remove(journal); err != nil {
			return err
		}
	}
	_, err := balancesort.ClusterSortFile(ctx, inPath, outPath, ccfg)
	return err
}

// removeJobFiles deletes a job's data files (not its manifest).
func (s *Server) removeJobFiles(dir string, uploaded bool) {
	os.RemoveAll(filepath.Join(dir, "scratch"))
	os.Remove(filepath.Join(dir, "output.bin"))
	if uploaded {
		os.Remove(filepath.Join(dir, "input.bin"))
	}
}

// Drain is the graceful shutdown: stop admitting, stop dispatching, let
// every running job stop at its journal's last commit point (the sort
// polls cancellation between passes, and every completed pass is a
// durable commit), and shut the HTTP side down. Queued and interrupted
// jobs stay on disk and complete after the next New on the same data
// directory. Returns nil once everything has stopped, or ctx's error if
// it expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining || s.killed
	s.draining = true
	cancels := s.collectCancels()
	s.mu.Unlock()
	if already {
		return nil
	}
	s.sched.Close()
	s.stopDispatch()
	for _, c := range cancels {
		c(errDrained)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.httpMu.Lock()
	srv := s.http
	s.httpMu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	return nil
}

// Kill is the abrupt shutdown — the in-process stand-in for SIGKILL that
// the crash-recovery tests aim mid-job. Running sorts are canceled with
// no manifest updates and no scheduler bookkeeping: whatever the journal
// last committed is what the next process finds. Kill waits for the
// worker goroutines to unwind (so a test can immediately start a new
// server on the same data directory) but performs no graceful handover.
func (s *Server) Kill() {
	s.mu.Lock()
	already := s.killed
	s.killed = true
	cancels := s.collectCancels()
	s.mu.Unlock()
	if already {
		return
	}
	s.sched.Close()
	s.stopDispatch()
	for _, c := range cancels {
		c(errKilled)
	}
	s.wg.Wait()
	s.httpMu.Lock()
	srv := s.http
	s.http = nil
	s.httpMu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// collectCancels snapshots the cancel funcs of running jobs; caller holds
// s.mu.
func (s *Server) collectCancels() []context.CancelCauseFunc {
	var out []context.CancelCauseFunc
	for _, j := range s.jobs {
		if j.cancel != nil {
			out = append(out, j.cancel)
		}
	}
	return out
}

// Close shuts the server down abruptly (Kill); use Drain for graceful.
func (s *Server) Close() { s.Kill() }

// Handler returns the API handler: the /v1/jobs resource plus /metrics,
// /debug/pprof/*, and /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves the API on it, returning the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.httpMu.Lock()
	s.httpLn = ln
	s.http = srv
	s.httpMu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound API address, or "" before Start.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Stats snapshots the scheduler for operators and tests.
func (s *Server) Stats() SchedStats { return s.sched.Stats() }

// metrics is the obs.Source behind /metrics: job counts by state, the
// lifetime counters, and the budget gauges.
func (s *Server) metrics() []obs.Metric {
	s.mu.Lock()
	states := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		states[j.man.State]++
		j.mu.Unlock()
	}
	c := s.counters
	s.mu.Unlock()
	st := s.sched.Stats()
	ms := []obs.Metric{
		{Name: "balancesort_jobs_submitted_total", Type: "counter", Help: "Jobs accepted by admission control.", Value: float64(c.submitted)},
		{Name: "balancesort_jobs_completed_total", Type: "counter", Help: "Jobs that reached done.", Value: float64(c.completed)},
		{Name: "balancesort_jobs_failed_total", Type: "counter", Help: "Jobs that reached failed.", Value: float64(c.failed)},
		{Name: "balancesort_jobs_canceled_total", Type: "counter", Help: "Jobs canceled by clients.", Value: float64(c.canceled)},
		{Name: "balancesort_jobs_resumed_total", Type: "counter", Help: "Crash-restart resumptions of interrupted jobs.", Value: float64(c.resumed)},
		{Name: "balancesort_jobs_budget_free_bytes", Type: "gauge", Help: "Unreserved budget bytes by resource.",
			Labels: []obs.Label{{Name: "resource", Value: "memory"}}, Value: float64(st.FreeMem)},
		{Name: "balancesort_jobs_budget_free_bytes", Type: "gauge",
			Labels: []obs.Label{{Name: "resource", Value: "disk"}}, Value: float64(st.FreeDisk)},
	}
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		ms = append(ms, obs.Metric{
			Name: "balancesort_jobs", Type: "gauge", Help: "Jobs by state.",
			Labels: []obs.Label{{Name: "state", Value: state}}, Value: float64(states[state]),
		})
	}
	return ms
}

// ---- HTTP layer ----

var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func (s *Server) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.obs.Mount(mux)
}

func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return "default", nil
	}
	if !tenantRe.MatchString(t) {
		return "", fmt.Errorf("bad tenant name %q: %w", t, ErrBadRequest)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := Classify(err)
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// submitRequest is the JSON submission body (server-local input path).
// Uploaded submissions carry the same parameters as query strings and the
// records as the request body.
type submitRequest struct {
	InputPath  string `json:"input_path"`
	Disks      int    `json:"disks"`
	BlockSize  int    `json:"block_size"`
	Memory     int    `json:"memory"`
	Buckets    int    `json:"buckets"`
	Engine     *bool  `json:"engine"`
	SortEngine string `json:"sort_engine"`
	Cluster    bool   `json:"cluster"`
}

// params fills unset fields from the server's base Sort config and
// validates the geometry the way SortFile will.
func (s *Server) params(req submitRequest) (SortParams, error) {
	base := s.opt.Sort
	p := SortParams{Disks: req.Disks, BlockSize: req.BlockSize, Memory: req.Memory, Buckets: req.Buckets, Engine: base.IO.Engine, SortEngine: string(base.Engine), Cluster: req.Cluster}
	if req.Engine != nil {
		p.Engine = *req.Engine
	}
	if req.SortEngine != "" {
		eng, err := balancesort.ParseEngine(req.SortEngine)
		if err != nil {
			return p, fmt.Errorf("%v: %w", err, ErrBadRequest)
		}
		p.SortEngine = string(eng)
	}
	if p.Cluster && len(s.opt.Cluster) == 0 {
		return p, fmt.Errorf("cluster job submitted but the server has no cluster workers configured: %w", ErrBadRequest)
	}
	if p.Disks == 0 {
		p.Disks = base.Disks
	}
	if p.BlockSize == 0 {
		p.BlockSize = base.BlockSize
	}
	if p.Memory == 0 {
		p.Memory = base.Memory
	}
	if p.Disks == 0 {
		p.Disks = 8
	}
	if p.BlockSize == 0 {
		p.BlockSize = 64
	}
	if p.Memory == 0 {
		p.Memory = 8 * p.Disks * p.BlockSize
		if p.Memory < 4096 {
			p.Memory = 4096
		}
	}
	if p.Disks < 1 || p.BlockSize < 1 || p.Memory < 1 || p.Buckets < 0 {
		return p, fmt.Errorf("bad geometry D=%d B=%d M=%d S=%d: %w", p.Disks, p.BlockSize, p.Memory, p.Buckets, ErrBadRequest)
	}
	if 4*p.Disks*p.BlockSize > p.Memory {
		return p, fmt.Errorf("DB = %d needs M >= %d (got %d): %w", p.Disks*p.BlockSize, 4*p.Disks*p.BlockSize, p.Memory, ErrBadRequest)
	}
	return p, nil
}

func queryInt(r *http.Request, key string) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", key, v, ErrBadRequest)
	}
	return n, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if s.stopping() {
		writeError(w, ErrDraining)
		return
	}

	var req submitRequest
	uploaded := true
	if ct := r.Header.Get("Content-Type"); ct == "application/json" {
		uploaded = false
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("bad JSON body: %v: %w", err, ErrBadRequest))
			return
		}
		if req.InputPath == "" || !filepath.IsAbs(req.InputPath) {
			writeError(w, fmt.Errorf("input_path must be an absolute server-local path: %w", ErrBadRequest))
			return
		}
	} else {
		for key, dst := range map[string]*int{
			"disks": &req.Disks, "block": &req.BlockSize, "memory": &req.Memory, "buckets": &req.Buckets,
		} {
			n, err := queryInt(r, key)
			if err != nil {
				writeError(w, err)
				return
			}
			*dst = n
		}
		if v := r.URL.Query().Get("engine"); v != "" {
			// "engine" historically toggled the disk I/O engine (a bool);
			// any non-boolean value now names a sort engine, so
			// engine=auto or engine=guidesort routes to the planner.
			if b, err := strconv.ParseBool(v); err == nil {
				req.Engine = &b
			} else {
				req.SortEngine = v
			}
		}
		if v := r.URL.Query().Get("cluster"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				writeError(w, fmt.Errorf("bad cluster=%q: %w", v, ErrBadRequest))
				return
			}
			req.Cluster = b
		}
	}

	params, err := s.params(req)
	if err != nil {
		writeError(w, err)
		return
	}

	var inputBytes int64
	var staged string
	if uploaded {
		staged, inputBytes, err = s.spool(r.Body)
		if err != nil {
			writeError(w, err)
			return
		}
		defer func() {
			if staged != "" {
				os.Remove(staged)
			}
		}()
	} else {
		fi, err := os.Stat(req.InputPath)
		if err != nil {
			writeError(w, fmt.Errorf("input_path: %v: %w", err, ErrBadRequest))
			return
		}
		inputBytes = fi.Size()
	}
	if inputBytes == 0 || inputBytes%recordSize != 0 {
		writeError(w, fmt.Errorf("input is %d bytes, not a positive multiple of the %d-byte record size: %w",
			inputBytes, recordSize, ErrBadRequest))
		return
	}

	diskFactor := int64(scratchDiskFactor + 1) // scratch + output
	if uploaded {
		diskFactor++ // plus the stored input copy
	}
	weight := 1
	if wt, ok := s.opt.TenantWeights[tenant]; ok && wt > 0 {
		weight = wt
	}
	man := Manifest{
		Tenant: tenant, State: StateQueued, Weight: weight,
		InputBytes: inputBytes, Records: int(inputBytes / recordSize),
		MemBytes:      int64(params.Memory) * recordSize,
		DiskBytes:     inputBytes * diskFactor,
		RetainBytes:   inputBytes, // the sorted output is exactly input-sized
		Params:        params,
		SubmittedUnix: time.Now().Unix(),
	}
	if !uploaded {
		man.LocalInput = req.InputPath
	}

	// Register before admitting so a worker that dispatches the ticket
	// immediately finds the job; unwind everything if admission refuses.
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		writeError(w, ErrDraining)
		return
	}
	s.nextID++
	man.ID = fmt.Sprintf("j%06d", s.nextID)
	man.Seq = s.nextID
	j := &job{man: man, prog: &progress{}, done: make(chan struct{})}
	s.jobs[man.ID] = j
	s.mu.Unlock()

	dir := s.jobDir(man.ID)
	cleanup := func() {
		s.mu.Lock()
		delete(s.jobs, man.ID)
		s.mu.Unlock()
		os.RemoveAll(dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		cleanup()
		writeError(w, err)
		return
	}
	if uploaded {
		if err := os.Rename(staged, filepath.Join(dir, "input.bin")); err != nil {
			cleanup()
			writeError(w, err)
			return
		}
		staged = ""
	}
	if err := WriteManifest(dir, &man); err != nil {
		cleanup()
		writeError(w, err)
		return
	}
	ticket := &Ticket{ID: man.ID, Tenant: tenant, MemBytes: man.MemBytes, DiskBytes: man.DiskBytes, Weight: weight}
	if err := s.sched.Admit(ticket); err != nil {
		cleanup()
		writeError(w, err)
		return
	}
	s.mu.Lock()
	s.counters.submitted++
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, j.snapshotStatus())
}

// spool streams an upload into the staging directory, bounded by the
// currently unreserved disk budget so a runaway upload cannot blow
// through the envelope before admission sees it.
func (s *Server) spool(body io.Reader) (path string, n int64, err error) {
	limit := s.sched.Stats().FreeDisk
	f, err := os.CreateTemp(s.tmpDir, "upload-*")
	if err != nil {
		return "", 0, err
	}
	n, err = io.Copy(f, io.LimitReader(body, limit+1))
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return "", 0, err
	}
	if n > limit {
		os.Remove(f.Name())
		return "", 0, &BudgetError{Resource: "disk", Need: n, Avail: limit, Budget: s.sched.Stats().BudgetDisk}
	}
	return f.Name(), n, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	list := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.man.Tenant == tenant {
			list = append(list, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, k int) bool { return list[i].man.Seq < list[k].man.Seq })
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(list))}
	for _, j := range list {
		out.Jobs = append(out.Jobs, j.snapshotStatus())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeError(w, err)
		return
	}
	j := s.lookup(r.PathValue("id"), tenant)
	if j == nil {
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshotStatus())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	j := s.lookup(id, tenant)
	if j == nil {
		writeError(w, ErrNotFound)
		return
	}

	// Queued: pull it out of the scheduler before a worker can take it.
	if t := s.sched.CancelQueued(id); t != nil {
		j.mu.Lock()
		uploaded := j.man.LocalInput == ""
		j.man.State = StateCanceled
		j.man.FinishedUnix = time.Now().Unix()
		man := j.man
		j.mu.Unlock()
		s.removeJobFiles(s.jobDir(id), uploaded)
		if err := WriteManifest(s.jobDir(id), &man); err != nil {
			s.opt.Logf("jobs: %s: %v", id, err)
		}
		s.sched.EndJob(t, false, man.DiskBytes)
		s.mu.Lock()
		s.counters.canceled++
		s.mu.Unlock()
		close(j.done)
		writeJSON(w, http.StatusOK, j.snapshotStatus())
		return
	}

	j.mu.Lock()
	state := j.man.State
	retain := j.man.RetainBytes
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateRunning:
		// Cancellation is asynchronous: the sort notices between passes
		// and the job lands in canceled. 202 + poll.
		if cancel != nil {
			cancel(errCanceledByUser)
		}
		writeJSON(w, http.StatusAccepted, j.snapshotStatus())
	case StateDone, StateFailed, StateCanceled:
		// Terminal: purge the job entirely and free what it retained.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		os.RemoveAll(s.jobDir(id))
		if state == StateDone {
			s.sched.FreeDisk(tenant, retain)
		}
		s.obs.SetTracer("job-"+id, nil)
		w.WriteHeader(http.StatusNoContent)
	default:
		// Queued but the scheduler no longer has it: a worker grabbed it
		// between our lookup and CancelQueued. Treat as running.
		writeJSON(w, http.StatusAccepted, j.snapshotStatus())
	}
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	j := s.lookup(id, tenant)
	if j == nil {
		writeError(w, ErrNotFound)
		return
	}
	j.mu.Lock()
	state := j.man.State
	j.mu.Unlock()
	if state != StateDone {
		writeError(w, fmt.Errorf("job %s is %s: %w", id, state, ErrNotDone))
		return
	}
	f, err := os.Open(filepath.Join(s.jobDir(id), "output.bin"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	_, _ = io.Copy(w, f)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.stopping() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": state, "scheduler": s.sched.Stats()})
}
