// Package jobs is the sort-as-a-service layer: a persistent, multi-tenant
// job server that turns the one-shot SortFile entry points into
// schedulable, budgeted, observable units of work behind an HTTP/JSON API.
//
// It composes machinery that already exists elsewhere in the repository —
// journaled resumable sorts (ResumeSortFile), context cancellation,
// per-phase tracing and the Prometheus /metrics endpoint (internal/obs) —
// and adds the three things a service needs on top of a library:
//
//   - an API: submit (streaming record upload or a server-local path),
//     status with live phase progress, list, cancel, and streaming download
//     of the sorted output;
//   - a scheduler: admission control against a configurable memory/disk
//     budget, per-tenant quotas, weighted-fair queueing across tenants, and
//     a bounded worker pool;
//   - durability: every accepted job gets a checksummed manifest in the
//     data directory, in-flight jobs run with the pass journal on, and a
//     restarted server resumes incomplete jobs from their journals with
//     byte-identical output.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"balancesort/internal/cluster"
	"balancesort/internal/diskio"
	"balancesort/internal/pdm"
)

// Sentinel errors of the API surface.
var (
	// ErrNotFound reports a job ID (or a tenant's view of it) that does not
	// exist.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrDraining reports a submission rejected because the server is
	// shutting down and no longer admits work.
	ErrDraining = errors.New("jobs: server is draining")
	// ErrNotDone reports an output download requested before the job
	// produced one.
	ErrNotDone = errors.New("jobs: job has not completed")
	// ErrBadRequest reports a malformed submission (bad geometry, bad
	// tenant name, input not a whole number of records, ...). Wrap it with
	// detail via fmt.Errorf("...: %w", ErrBadRequest).
	ErrBadRequest = errors.New("jobs: bad request")
)

// QuotaError rejects a submission that would push a tenant past one of its
// quotas. It maps to HTTP 429: the tenant can retry after its own jobs
// finish or are deleted.
type QuotaError struct {
	Tenant string
	Kind   string // "jobs" or "disk"
	Limit  int64
	Used   int64
	Need   int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: tenant %q over %s quota: using %d of %d, need %d more",
		e.Tenant, e.Kind, e.Used, e.Limit, e.Need)
}

// BudgetError rejects a submission the server can never (or currently
// not) hold within its global memory/disk budget. It maps to HTTP 507
// (Insufficient Storage): no amount of client retrying with the same job
// helps until capacity is freed.
type BudgetError struct {
	Resource string // "memory" or "disk"
	Need     int64  // bytes the job requires
	Avail    int64  // bytes currently unreserved
	Budget   int64  // total configured bytes
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("jobs: %s budget exceeded: job needs %d bytes, %d of %d available",
		e.Resource, e.Need, e.Avail, e.Budget)
}

// Error codes carried in API error bodies, one per distinguishable failure
// class. Clients branch on the code; the HTTP status is the coarse
// summary.
const (
	CodeBadRequest   = "bad_request"    // 400: malformed submission
	CodeNotFound     = "not_found"      // 404: unknown job
	CodeNotDone      = "not_done"       // 409: output requested early
	CodeQuota        = "quota"          // 429: per-tenant quota exceeded
	CodeBudget       = "budget"         // 507: server memory/disk budget exceeded
	CodeDraining     = "draining"       // 503: server shutting down
	CodeCanceled     = "canceled"       // 499: job canceled by the client
	CodeCorruptInput = "corrupt_input"  // 422: input or scratch data failed integrity checks
	CodeDiskFailed   = "disk_failed"    // 503: a scratch disk is permanently down
	CodeWorkerLost   = "worker_lost"    // 502: a cluster worker vanished mid-job
	CodeStraggler    = "straggler"      // 503: a cluster worker stalled past its phase budget
	CodeInternal     = "internal_error" // 500: anything else
)

// Classify maps any error surfaced by the job machinery — admission,
// scheduling, or the sort engines themselves — onto (HTTP status, error
// code). This is the single mapping table of the API: it distinguishes
// corrupt input (*pdm.CorruptBlockError, *pdm.TruncatedDiskError → 422)
// from capacity (QuotaError → 429, BudgetError → 507) from internal
// failure (*diskio.DiskFailedError → 503, *cluster.StragglerError → 503
// retryable, *cluster.WorkerLostError → 502, everything else → 500),
// however deeply the typed error is wrapped. The straggler case precedes
// the lost one: a demotion that breaks quorum wraps both, and "too slow,
// retry elsewhere" (503) is the more actionable verdict.
func Classify(err error) (status int, code string) {
	var (
		quota     *QuotaError
		budget    *BudgetError
		corrupt   *pdm.CorruptBlockError
		truncated *pdm.TruncatedDiskError
		failed    *diskio.DiskFailedError
		straggler *cluster.StragglerError
		lost      *cluster.WorkerLostError
	)
	switch {
	case err == nil:
		return http.StatusOK, ""
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict, CodeNotDone
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	case errors.As(err, &quota):
		return http.StatusTooManyRequests, CodeQuota
	case errors.As(err, &budget):
		return http.StatusInsufficientStorage, CodeBudget
	case errors.As(err, &corrupt), errors.As(err, &truncated):
		return http.StatusUnprocessableEntity, CodeCorruptInput
	case errors.As(err, &failed):
		return http.StatusServiceUnavailable, CodeDiskFailed
	case errors.As(err, &straggler):
		return http.StatusServiceUnavailable, CodeStraggler
	case errors.As(err, &lost):
		return http.StatusBadGateway, CodeWorkerLost
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeInternal
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// statusClientClosedRequest is nginx's conventional status for a request
// the client abandoned; net/http has no name for it.
const statusClientClosedRequest = 499

// HTTPStatus is Classify's status half, for callers that only route.
func HTTPStatus(err error) int {
	status, _ := Classify(err)
	return status
}
