package jobs

import (
	"context"
	"sort"
	"sync"
)

// Budget is the server-wide resource envelope jobs are admitted against.
// Memory is reserved while a job runs (a sort holds O(M) records in host
// memory); disk is reserved from admission until the job's files are
// deleted, because the uploaded input, the scratch array, and the sorted
// output all live in the data directory.
type Budget struct {
	// MemoryBytes bounds the summed in-memory working sets (M records ×
	// the record size, per running job).
	MemoryBytes int64
	// DiskBytes bounds the summed on-disk footprints of admitted jobs.
	DiskBytes int64
}

// Quota bounds one tenant's share of the server. Zero fields are
// unlimited.
type Quota struct {
	// MaxJobsPerTenant caps a tenant's live (queued + running) jobs.
	MaxJobsPerTenant int
	// MaxDiskPerTenant caps a tenant's reserved disk bytes.
	MaxDiskPerTenant int64
}

// Ticket is the scheduler's view of one job: who owns it and what it
// costs. The server holds the rest of the job state.
type Ticket struct {
	ID     string
	Tenant string
	// MemBytes is reserved against Budget.MemoryBytes while the job runs.
	MemBytes int64
	// DiskBytes is reserved against Budget.DiskBytes from admission until
	// the job's files are deleted.
	DiskBytes int64
	// Weight is the tenant's fair-queueing weight (minimum 1): a tenant
	// with weight 2 receives twice the dispatch service of weight 1 under
	// contention.
	Weight int

	seq int64 // admission order, the final queue tie-break
}

// tenantState is one tenant's scheduler bookkeeping.
type tenantState struct {
	name  string
	queue []*Ticket // FIFO of not-yet-dispatched tickets
	live  int       // queued + running + retained-terminal jobs
	disk  int64     // reserved disk bytes
	vtime float64   // normalized service received (cost/weight at dispatch)
}

// Scheduler is the admission-control and weighted-fair-queueing core of
// the job server, usable (and tested) in isolation from HTTP and the sort
// engines. Dispatch order is deterministic: among tenants with queued
// work, the lowest virtual time wins, ties break by tenant name, and each
// tenant's own queue is FIFO.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	budget  Budget
	quota   Quota
	tenants map[string]*tenantState

	freeMem  int64
	freeDisk int64
	queued   int
	running  int
	seq      int64
	closed   bool
}

// NewScheduler creates a scheduler over the given budget and quotas.
func NewScheduler(budget Budget, quota Quota) *Scheduler {
	s := &Scheduler{
		budget:   budget,
		quota:    quota,
		tenants:  make(map[string]*tenantState),
		freeMem:  budget.MemoryBytes,
		freeDisk: budget.DiskBytes,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Scheduler) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name}
		s.tenants[name] = t
	}
	return t
}

// minQueuedVtime returns the smallest virtual time among tenants with
// queued work, and whether any exists.
func (s *Scheduler) minQueuedVtime() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if !ok || t.vtime < min {
			min, ok = t.vtime, true
		}
	}
	return min, ok
}

// Admit checks quotas and the budget, reserves the ticket's disk bytes,
// and enqueues it. A ticket whose memory need exceeds the whole memory
// budget, or whose disk need exceeds the currently unreserved disk, is
// rejected with a *BudgetError; a tenant past its quota gets a
// *QuotaError. On success the ticket is queued and will be handed to a
// worker by Next in weighted-fair order.
func (s *Scheduler) Admit(t *Ticket) error {
	if t.Weight < 1 {
		t.Weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrDraining
	}
	if t.MemBytes > s.budget.MemoryBytes {
		return &BudgetError{Resource: "memory", Need: t.MemBytes, Avail: s.budget.MemoryBytes, Budget: s.budget.MemoryBytes}
	}
	if t.DiskBytes > s.freeDisk {
		return &BudgetError{Resource: "disk", Need: t.DiskBytes, Avail: s.freeDisk, Budget: s.budget.DiskBytes}
	}
	ts := s.tenant(t.Tenant)
	if s.quota.MaxJobsPerTenant > 0 && ts.live >= s.quota.MaxJobsPerTenant {
		return &QuotaError{Tenant: t.Tenant, Kind: "jobs", Limit: int64(s.quota.MaxJobsPerTenant), Used: int64(ts.live), Need: 1}
	}
	if s.quota.MaxDiskPerTenant > 0 && ts.disk+t.DiskBytes > s.quota.MaxDiskPerTenant {
		return &QuotaError{Tenant: t.Tenant, Kind: "disk", Limit: s.quota.MaxDiskPerTenant, Used: ts.disk, Need: t.DiskBytes}
	}
	if len(ts.queue) == 0 {
		// (Re)activation: a tenant returning from idleness competes from
		// the current service frontier, not from credit banked while away.
		if min, ok := s.minQueuedVtime(); ok && ts.vtime < min {
			ts.vtime = min
		}
	}
	s.freeDisk -= t.DiskBytes
	ts.disk += t.DiskBytes
	ts.live++
	s.seq++
	t.seq = s.seq
	ts.queue = append(ts.queue, t)
	s.queued++
	s.cond.Broadcast()
	return nil
}

// next picks the dispatchable ticket under the WFQ discipline, or nil.
// The head-of-line ticket of the minimum-vtime tenant must also fit the
// free memory; if it does not, nothing is dispatched (strict order, so a
// large job cannot be starved by small ones slipping past it).
func (s *Scheduler) next() *Ticket {
	var pick *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if pick == nil || t.vtime < pick.vtime || (t.vtime == pick.vtime && t.name < pick.name) {
			pick = t
		}
	}
	if pick == nil || pick.queue[0].MemBytes > s.freeMem {
		return nil
	}
	t := pick.queue[0]
	pick.queue = pick.queue[1:]
	s.queued--
	s.running++
	s.freeMem -= t.MemBytes
	cost := float64(t.DiskBytes)
	if cost == 0 {
		cost = 1
	}
	pick.vtime += cost / float64(t.Weight)
	return t
}

// Next blocks until a ticket is dispatchable (or ctx is done, or the
// scheduler is closed) and returns it with its memory reserved. Callers
// must pair every successful Next with EndJob.
func (s *Scheduler) Next(ctx context.Context) (*Ticket, error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t := s.next(); t != nil {
			return t, nil
		}
		if s.closed {
			return nil, ErrDraining
		}
		s.cond.Wait()
	}
}

// Readmit enqueues a ticket recovered from a restarted server's
// manifests, reserving its disk but bypassing the quota and budget
// checks: the job was already admitted once, and a shrunk budget must not
// orphan durable work (the free counters may go briefly negative, which
// only delays new admissions).
func (s *Scheduler) Readmit(t *Ticket) {
	if t.Weight < 1 {
		t.Weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(t.Tenant)
	if len(ts.queue) == 0 {
		if min, ok := s.minQueuedVtime(); ok && ts.vtime < min {
			ts.vtime = min
		}
	}
	s.freeDisk -= t.DiskBytes
	ts.disk += t.DiskBytes
	ts.live++
	s.seq++
	t.seq = s.seq
	ts.queue = append(ts.queue, t)
	s.queued++
	s.cond.Broadcast()
}

// Restore re-reserves the disk a recovered terminal job still holds (its
// retained output), without queueing anything.
func (s *Scheduler) Restore(tenant string, diskBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.freeDisk -= diskBytes
	s.tenant(tenant).disk += diskBytes
}

// CancelQueued removes a not-yet-dispatched ticket from its tenant's
// queue and returns it, or nil if no such ticket is queued. The caller
// decides what to do with the reservations (EndJob releases them).
func (s *Scheduler) CancelQueued(id string) *Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range s.tenants {
		for i, t := range ts.queue {
			if t.ID == id {
				ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
				s.queued--
				s.cond.Broadcast()
				return t
			}
		}
	}
	return nil
}

// EndJob retires a ticket: it releases the memory reservation (when the
// ticket had been dispatched), returns freeDisk bytes of the disk
// reservation to the pool, and drops the job from the tenant's live
// count. A completed job that keeps its output passes freeDisk less than
// its full reservation; FreeDisk returns the rest when the job is
// deleted.
func (s *Scheduler) EndJob(t *Ticket, dispatched bool, freeDisk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dispatched {
		s.freeMem += t.MemBytes
		s.running--
	}
	ts := s.tenant(t.Tenant)
	s.freeDisk += freeDisk
	ts.disk -= freeDisk
	ts.live--
	s.cond.Broadcast()
}

// FreeDisk returns bytes of a tenant's disk reservation to the pool —
// the deletion path for terminal jobs whose files were just removed.
func (s *Scheduler) FreeDisk(tenant string, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.freeDisk += bytes
	s.tenant(tenant).disk -= bytes
	s.cond.Broadcast()
}

// Close stops admission and unblocks every waiter: Admit and Next return
// ErrDraining (once the queue has no dispatchable work).
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SchedStats is a point-in-time scheduler snapshot for /metrics and the
// status API.
type SchedStats struct {
	Queued      int              `json:"queued"`
	Running     int              `json:"running"`
	FreeMem     int64            `json:"free_memory_bytes"`
	FreeDisk    int64            `json:"free_disk_bytes"`
	BudgetMem   int64            `json:"budget_memory_bytes"`
	BudgetDisk  int64            `json:"budget_disk_bytes"`
	TenantQueue map[string]int   `json:"tenant_queue,omitempty"`
	TenantDisk  map[string]int64 `json:"tenant_disk,omitempty"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedStats{
		Queued: s.queued, Running: s.running,
		FreeMem: s.freeMem, FreeDisk: s.freeDisk,
		BudgetMem: s.budget.MemoryBytes, BudgetDisk: s.budget.DiskBytes,
		TenantQueue: map[string]int{}, TenantDisk: map[string]int64{},
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.tenants[name]
		if len(ts.queue) > 0 {
			st.TenantQueue[name] = len(ts.queue)
		}
		if ts.disk > 0 {
			st.TenantDisk[name] = ts.disk
		}
	}
	return st
}
