package jobs

import (
	"sync"

	"balancesort/internal/obs"
)

// progress is the per-job live Observer: it is handed to the sort through
// ObsConfig.Observer and distills the span stream into the phase/pass
// snapshot the status API reports. Callbacks run on the sorting
// goroutines, so it does nothing but update a few fields under a mutex.
type progress struct {
	mu     sync.Mutex
	phase  string // "layer/name" of the innermost open phase
	passes int64  // completed distribute passes
	spans  int64  // completed spans of any kind
}

// ProgressSnapshot is the live view of a running job.
type ProgressSnapshot struct {
	// Phase is the most recently started phase, as "layer/name" (e.g.
	// "sort/distribute-pass"); empty before the first span.
	Phase string `json:"phase,omitempty"`
	// Passes counts completed distribute passes — the sort's own commit
	// cadence, so it is also how many journal commits the job has made
	// beyond the input load.
	Passes int64 `json:"passes"`
	// Spans counts all completed phase spans.
	Spans int64 `json:"spans"`
}

func (p *progress) SpanStart(layer, name string, id int) {
	p.mu.Lock()
	p.phase = layer + "/" + name
	p.mu.Unlock()
}

func (p *progress) SpanEnd(s obs.Span) {
	p.mu.Lock()
	p.spans++
	if s.Layer == "sort" && s.Name == "distribute-pass" {
		p.passes++
	}
	p.mu.Unlock()
}

func (p *progress) Count(layer, name string, id int, delta int64) {}

func (p *progress) snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProgressSnapshot{Phase: p.phase, Passes: p.passes, Spans: p.spans}
}
