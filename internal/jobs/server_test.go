package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"balancesort"
	"balancesort/internal/pdm"
)

// matrixParams is the crash-test geometry shared with the root package's
// journal tests: N=6000 Zipf records through a 3-level recursion, ~21
// journal commit boundaries to interrupt at.
const matrixQuery = "?disks=4&block=8&memory=1024&buckets=4"

func matrixInput(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	in := balancesort.NewWorkload(balancesort.Zipf, 6000, 21)
	path := filepath.Join(dir, "in.bin")
	if err := balancesort.WriteRecordFile(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// matrixReference sorts the same input directly with SortFile — the
// byte-identical baseline every server path must reproduce.
func matrixReference(t *testing.T, input []byte) []byte {
	t.Helper()
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(inPath, input, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := balancesort.Config{Disks: 4, BlockSize: 8, Memory: 1024, Buckets: 4}
	cfg.Robust.Journal = true
	if _, err := balancesort.SortFile(inPath, outPath, filepath.Join(dir, "scratch"), cfg); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.DataDir == "" {
		opt.DataDir = t.TempDir()
	}
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Kill)
	return srv, ts
}

func submitUpload(t *testing.T, base, tenant, query string, body []byte) JobStatus {
	t.Helper()
	st, code := trySubmitUpload(t, base, tenant, query, body)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	return st
}

func trySubmitUpload(t *testing.T, base, tenant, query string, body []byte) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/jobs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, base, tenant, id string) (JobStatus, int) {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func waitState(t *testing.T, base, tenant, id, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, code := getStatus(t, base, tenant, id)
		if code == http.StatusOK && st.State == want {
			return st
		}
		if code == http.StatusOK && (st.State == StateFailed || st.State == StateCanceled) && want == StateDone {
			t.Fatalf("job %s landed in %s (%s: %s)", id, st.State, st.ErrorCode, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within %v", id, want, timeout)
	return JobStatus{}
}

func download(t *testing.T, base, tenant, id string) []byte {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+id+"/output", nil)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download: status %d", resp.StatusCode)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerLifecycle walks one uploaded job through submit → done →
// download → delete, checking the output is byte-identical to a direct
// SortFile and the API bookkeeping along the way.
func TestServerLifecycle(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	srv, ts := newTestServer(t, Options{Workers: 2})

	st := submitUpload(t, ts.URL, "alice", matrixQuery, input)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	if st.Records != len(input)/recordSize {
		t.Fatalf("records %d, want %d", st.Records, len(input)/recordSize)
	}

	fin := waitState(t, ts.URL, "alice", st.ID, StateDone, 30*time.Second)
	if fin.SortPasses == 0 || fin.IOs == 0 {
		t.Fatalf("done job reports no work: %+v", fin)
	}
	got := download(t, ts.URL, "alice", st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("served output differs from direct SortFile")
	}

	// The job's scratch and uploaded input are gone; the output remains.
	dir := srv.jobDir(st.ID)
	if _, err := os.Stat(filepath.Join(dir, "scratch")); !os.IsNotExist(err) {
		t.Fatal("done job kept its scratch directory")
	}
	if _, err := os.Stat(filepath.Join(dir, "input.bin")); !os.IsNotExist(err) {
		t.Fatal("done job kept its uploaded input")
	}

	// Tenant isolation: bob sees neither the status nor the listing.
	if _, code := getStatus(t, ts.URL, "bob", st.ID); code != http.StatusNotFound {
		t.Fatalf("cross-tenant status: %d, want 404", code)
	}

	// Delete purges the directory and the registry.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	req.Header.Set("X-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("delete left the job directory")
	}
	if _, code := getStatus(t, ts.URL, "alice", st.ID); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", code)
	}
	if st := srv.Stats(); st.FreeDisk != srv.opt.Budget.DiskBytes {
		t.Fatalf("disk not fully released: free %d of %d", st.FreeDisk, srv.opt.Budget.DiskBytes)
	}
}

// TestServerLocalPathSubmit submits by server-local path and checks the
// input file is left untouched.
func TestServerLocalPathSubmit(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	inPath := filepath.Join(t.TempDir(), "local.bin")
	if err := os.WriteFile(inPath, input, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1})

	body, _ := json.Marshal(map[string]any{
		"input_path": inPath, "disks": 4, "block_size": 8, "memory": 1024, "buckets": 4,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	waitState(t, ts.URL, "", st.ID, StateDone, 30*time.Second)
	if got := download(t, ts.URL, "", st.ID); !bytes.Equal(got, want) {
		t.Fatal("output differs from direct SortFile")
	}
	if raw, err := os.ReadFile(inPath); err != nil || !bytes.Equal(raw, input) {
		t.Fatal("server touched the local input file")
	}
}

// TestServerRejections drives the admission errors through HTTP: bad
// input size (400), memory over budget (507), tenant over quota (429),
// output before done (409), unknown job (404).
func TestServerRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Budget:  Budget{MemoryBytes: 1 << 20, DiskBytes: 1 << 30},
		Quota:   Quota{MaxJobsPerTenant: 1},
		// A slow engine keeps the first job running while the quota case
		// submits a second one.
		Sort: balancesort.Config{IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond}},
	})
	input := matrixInput(t)

	// 400: not a whole number of records.
	if _, code := trySubmitUpload(t, ts.URL, "", matrixQuery, input[:recordSize+3]); code != http.StatusBadRequest {
		t.Fatalf("ragged input: %d, want 400", code)
	}
	// 400: bad geometry (M < 4DB).
	if _, code := trySubmitUpload(t, ts.URL, "", "?disks=4&block=8&memory=100", input); code != http.StatusBadRequest {
		t.Fatalf("bad geometry: %d, want 400", code)
	}
	// 400: bad tenant name.
	if _, code := trySubmitUpload(t, ts.URL, "no spaces", matrixQuery, input); code != http.StatusBadRequest {
		t.Fatalf("bad tenant: %d, want 400", code)
	}
	// 507: M=1<<20 records × 16 bytes blows the 1 MiB memory budget.
	if _, code := trySubmitUpload(t, ts.URL, "", fmt.Sprintf("?disks=4&block=8&memory=%d", 1<<20), input); code != http.StatusInsufficientStorage {
		t.Fatalf("over budget: %d, want 507", code)
	}

	// 429: second live job for the same tenant.
	st := submitUpload(t, ts.URL, "carol", matrixQuery, input)
	if _, code := trySubmitUpload(t, ts.URL, "carol", matrixQuery, input); code != http.StatusTooManyRequests {
		t.Fatalf("over quota: %d, want 429", code)
	}

	// 409: output requested before done (the slow job is still going).
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/output", nil)
	req.Header.Set("X-Tenant", "carol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early output: %d, want 409", resp.StatusCode)
	}

	// 404: unknown job.
	if _, code := getStatus(t, ts.URL, "", "j999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}

// TestServerCancelRunning cancels a mid-flight job and checks it lands in
// canceled with its files gone and its reservations returned.
func TestServerCancelRunning(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		Workers: 1,
		Sort:    balancesort.Config{IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond}},
	})
	input := matrixInput(t)
	st := submitUpload(t, ts.URL, "", matrixQuery, input)
	waitState(t, ts.URL, "", st.ID, StateRunning, 10*time.Second)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", resp.StatusCode)
	}
	waitState(t, ts.URL, "", st.ID, StateCanceled, 30*time.Second)
	if fs := srv.Stats(); fs.FreeDisk != srv.opt.Budget.DiskBytes {
		t.Fatalf("canceled job still holds disk: free %d of %d", fs.FreeDisk, srv.opt.Budget.DiskBytes)
	}
	if _, err := os.Stat(filepath.Join(srv.jobDir(st.ID), "scratch")); !os.IsNotExist(err) {
		t.Fatal("canceled job kept its scratch")
	}
}

// TestServerCancelQueued cancels a job before any worker dispatches it.
func TestServerCancelQueued(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		Workers: 1,
		Sort:    balancesort.Config{IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond}},
	})
	input := matrixInput(t)
	running := submitUpload(t, ts.URL, "", matrixQuery, input)
	waitState(t, ts.URL, "", running.ID, StateRunning, 10*time.Second)
	queued := submitUpload(t, ts.URL, "", matrixQuery, input)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != StateCanceled {
		t.Fatalf("cancel queued: %d %q, want 200 canceled", resp.StatusCode, st.State)
	}
	// The running job is unaffected and completes.
	waitState(t, ts.URL, "", running.ID, StateDone, 60*time.Second)
	_ = srv
}

// TestServerKillRestartResume is the durability acceptance test: kill the
// server abruptly mid-sort (after the journal has committed passes),
// start a fresh server over the same data directory, and require the
// resumed job's output to be byte-identical to a direct SortFile of the
// same input.
func TestServerKillRestartResume(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	dataDir := t.TempDir()

	// Phase 1: a deliberately slow server (per-op latency injection) so
	// the kill lands mid-recursion, after ≥2 journal commits.
	srv1, err := New(Options{
		DataDir: dataDir, Workers: 1, Logf: t.Logf,
		Sort: balancesort.Config{IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	st := submitUpload(t, ts1.URL, "alice", matrixQuery, input)
	scratch := filepath.Join(dataDir, "jobs", st.ID, "scratch")

	deadline := time.Now().Add(60 * time.Second)
	for {
		if n, err := balancesort.JournalCommits(scratch); err == nil && n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached two journal commits")
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Kill() // abrupt: no manifest updates, no graceful anything
	ts1.Close()

	// The manifest must still say running — the kill wrote nothing.
	man, err := ReadManifest(filepath.Join(dataDir, "jobs", st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if man.State != StateRunning {
		t.Fatalf("manifest after kill says %q, want running", man.State)
	}

	// Phase 2: a fresh, full-speed server over the same directory resumes
	// the job from its journal.
	srv2, err := New(Options{DataDir: dataDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	fin := waitState(t, ts2.URL, "alice", st.ID, StateDone, 60*time.Second)
	if fin.Resumes < 1 {
		t.Fatalf("job reports %d resumes, want ≥1", fin.Resumes)
	}
	got := download(t, ts2.URL, "alice", st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from the uninterrupted direct sort")
	}
}

// TestServerDrainRestart is the graceful half: SIGTERM semantics. Drain
// stops admission (503), lets the running job stop at a journal commit,
// leaves the queue durable, and a restarted server completes everything
// byte-identically.
func TestServerDrainRestart(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	dataDir := t.TempDir()

	srv1, err := New(Options{
		DataDir: dataDir, Workers: 1, Logf: t.Logf,
		Sort: balancesort.Config{IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	running := submitUpload(t, ts1.URL, "", matrixQuery, input)
	waitState(t, ts1.URL, "", running.ID, StateRunning, 10*time.Second)
	queued := submitUpload(t, ts1.URL, "", matrixQuery, input)

	done := make(chan error, 1)
	go func() { done <- srv1.Drain(context.Background()) }()
	// While draining (and after), submissions are refused with 503.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, code := trySubmitUpload(t, ts1.URL, "", matrixQuery, input); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting jobs")
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	srv2, err := New(Options{DataDir: dataDir, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	for _, id := range []string{running.ID, queued.ID} {
		waitState(t, ts2.URL, "", id, StateDone, 60*time.Second)
		if got := download(t, ts2.URL, "", id); !bytes.Equal(got, want) {
			t.Fatalf("job %s: drained-then-restarted output differs from direct sort", id)
		}
	}
}

// startClusterWorkers launches n in-process cluster workers (the same
// ServeWorker entry a `balancesort -join` process uses) that outlive any
// job server in the test — exactly the deployment shape where a coordinator
// dies but its workers keep their shards parked.
func startClusterWorkers(t *testing.T, n int, sort balancesort.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		opt := balancesort.WorkerOptions{ScratchDir: t.TempDir(), Sort: sort}
		go func() {
			defer close(done)
			_ = balancesort.ServeWorker(ctx, ln, opt)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestServerClusterLifecycle runs one job over the cluster backend end to
// end and checks the output matches the direct single-process sort.
func TestServerClusterLifecycle(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	workers := startClusterWorkers(t, 3, balancesort.Config{Disks: 4, BlockSize: 8, Memory: 1024})
	_, ts := newTestServer(t, Options{Workers: 1, Cluster: workers})

	st := submitUpload(t, ts.URL, "alice", matrixQuery+"&cluster=1", input)
	waitState(t, ts.URL, "alice", st.ID, StateDone, 60*time.Second)
	if got := download(t, ts.URL, "alice", st.ID); !bytes.Equal(got, want) {
		t.Fatal("cluster-backed output differs from direct SortFile")
	}
}

// TestServerClusterRejectedWithoutWorkers: a cluster job against a server
// with no configured workers is a 400 at submission, not a doomed dispatch.
func TestServerClusterRejectedWithoutWorkers(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if _, code := trySubmitUpload(t, ts.URL, "", matrixQuery+"&cluster=1", matrixInput(t)); code != http.StatusBadRequest {
		t.Fatalf("cluster job without workers: %d, want 400", code)
	}
}

// TestServerClusterKillRestartResume is the membership-churn durability
// acceptance test: the job server (and with it the cluster coordinator) is
// killed abruptly mid-sort, while the cluster workers live on and park
// their shards. A fresh server over the same data directory must resume the
// job through the coordinator journal's resume path — not start it over —
// and the output must be byte-identical to a direct sort.
func TestServerClusterKillRestartResume(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	dataDir := t.TempDir()
	// Slow worker-side shard sorts give the kill a wide mid-job window.
	workers := startClusterWorkers(t, 3, balancesort.Config{
		Disks: 4, BlockSize: 8, Memory: 1024,
		IO: balancesort.IOConfig{Engine: true, LatencyJitter: time.Millisecond},
	})

	srv1, err := New(Options{DataDir: dataDir, Workers: 1, Logf: t.Logf, Cluster: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	st := submitUpload(t, ts1.URL, "alice", matrixQuery+"&cluster=1", input)
	journal := filepath.Join(dataDir, "jobs", st.ID, "scratch", "cluster.journal")

	// Kill once the coordinator journal has committed real progress.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if entries, err := pdm.LoadJournal(journal); err == nil && len(entries) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster job never committed journal progress")
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Kill()
	ts1.Close()

	man, err := ReadManifest(filepath.Join(dataDir, "jobs", st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if man.State != StateRunning {
		t.Fatalf("manifest after kill says %q, want running", man.State)
	}

	srv2, err := New(Options{DataDir: dataDir, Workers: 1, Logf: t.Logf, Cluster: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	fin := waitState(t, ts2.URL, "alice", st.ID, StateDone, 120*time.Second)
	if fin.Resumes < 1 {
		t.Fatalf("job reports %d resumes, want ≥1", fin.Resumes)
	}
	if got := download(t, ts2.URL, "alice", st.ID); !bytes.Equal(got, want) {
		t.Fatal("resumed cluster output differs from the uninterrupted direct sort")
	}
}

// TestServerRecoveryQuarantine checks a corrupt manifest is skipped, not
// trusted and not deleted, while healthy neighbors recover.
func TestServerRecoveryQuarantine(t *testing.T) {
	dataDir := t.TempDir()
	good := filepath.Join(dataDir, "jobs", "j000001")
	bad := filepath.Join(dataDir, "jobs", "j000002")
	for _, d := range []string{good, bad} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteManifest(good, &Manifest{
		ID: "j000001", Tenant: "t", State: StateDone, Seq: 1,
		InputBytes: 160, Records: 10, RetainBytes: 160,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, manifestName), []byte(`{"crc":1,"manifest":{"id":"j000002"}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Options{DataDir: dataDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()
	if srv.lookup("j000001", "t") == nil {
		t.Fatal("healthy manifest not recovered")
	}
	if srv.lookup("j000002", "t") != nil {
		t.Fatal("corrupt manifest was trusted")
	}
	if _, err := os.Stat(filepath.Join(bad, manifestName)); err != nil {
		t.Fatal("corrupt manifest was deleted instead of quarantined")
	}
	// The recovered done job holds its retained bytes against the budget.
	if st := srv.Stats(); st.FreeDisk != srv.opt.Budget.DiskBytes-160 {
		t.Fatalf("free disk %d, want budget-160", st.FreeDisk)
	}
}

// TestManifestRoundTrip pins the envelope: write, read back identical,
// and a flipped payload byte is detected by the checksum.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		ID: "j000007", Tenant: "acme", State: StateRunning, Weight: 2, Seq: 7,
		InputBytes: 96000, Records: 6000, MemBytes: 16384, DiskBytes: 480000, RetainBytes: 96000,
		Params: SortParams{Disks: 4, BlockSize: 8, Memory: 1024, Buckets: 4}, SubmittedUnix: 1754600000,
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip changed the manifest:\n got %+v\nwant %+v", got, m)
	}

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("acme"))
	raw[i] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("bit-flipped manifest read back clean")
	}
}

// TestServerMetricsEndpoint checks the job gauges and per-job sort spans
// surface on /metrics.
func TestServerMetricsEndpoint(t *testing.T) {
	input := matrixInput(t)
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submitUpload(t, ts.URL, "", matrixQuery, input)
	waitState(t, ts.URL, "", st.ID, StateDone, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"balancesort_jobs_submitted_total 1",
		"balancesort_jobs_completed_total 1",
		`balancesort_jobs{state="done"} 1`,
		`balancesort_events_total{layer="sort"`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerSortEngineParam drives the per-job engine selector: engine=auto
// routes the job through the planner, engine=guidesort pins the Guidesort
// engine, a boolean value keeps its historical I/O-engine meaning, and an
// unknown name is rejected at submission.
func TestServerSortEngineParam(t *testing.T) {
	input := matrixInput(t)
	want := matrixReference(t, input)
	_, ts := newTestServer(t, Options{Workers: 2})

	for _, eng := range []string{"guidesort", "auto"} {
		st := submitUpload(t, ts.URL, "", matrixQuery+"&engine="+eng, input)
		if st.Params.SortEngine != eng {
			t.Fatalf("engine=%s recorded as %q", eng, st.Params.SortEngine)
		}
		waitState(t, ts.URL, "", st.ID, StateDone, 30*time.Second)
		if got := download(t, ts.URL, "", st.ID); !bytes.Equal(got, want) {
			t.Fatalf("engine=%s output differs from direct SortFile", eng)
		}
	}

	// A boolean still toggles the disk I/O engine, not the sort engine.
	st := submitUpload(t, ts.URL, "", matrixQuery+"&engine=true", input)
	if !st.Params.Engine || st.Params.SortEngine != "" {
		t.Fatalf("engine=true parsed as %+v", st.Params)
	}

	if _, code := trySubmitUpload(t, ts.URL, "", matrixQuery+"&engine=quantum", input); code != http.StatusBadRequest {
		t.Fatalf("engine=quantum: status %d, want 400", code)
	}
}
