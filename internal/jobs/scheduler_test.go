package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// drain pulls every immediately-dispatchable ticket, in order.
func drainSched(t *testing.T, s *Scheduler, n int) []*Ticket {
	t.Helper()
	out := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		tk, err := s.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		out = append(out, tk)
	}
	return out
}

// TestWFQOrdering pins the weighted-fair dispatch order: with tenant A at
// weight 1 and B at weight 2 submitting four equal-cost jobs each, B gets
// twice the service and the exact deterministic sequence is
// A B B A B B A A (lexical tie-break, FIFO within a tenant).
func TestWFQOrdering(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 1 << 40, DiskBytes: 1 << 40}, Quota{})
	const cost = 1000
	for i := 0; i < 4; i++ {
		for _, tc := range []struct {
			tenant string
			weight int
		}{{"A", 1}, {"B", 2}} {
			tk := &Ticket{ID: tc.tenant + string(rune('1'+i)), Tenant: tc.tenant, MemBytes: 1, DiskBytes: cost, Weight: tc.weight}
			if err := s.Admit(tk); err != nil {
				t.Fatalf("Admit %s: %v", tk.ID, err)
			}
		}
	}
	var got []string
	for _, tk := range drainSched(t, s, 8) {
		got = append(got, tk.Tenant)
		s.EndJob(tk, true, tk.DiskBytes)
	}
	want := []string{"A", "B", "B", "A", "B", "B", "A", "A"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestWFQFIFOWithinTenant checks a single tenant's jobs dispatch in
// admission order.
func TestWFQFIFOWithinTenant(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 1 << 30, DiskBytes: 1 << 30}, Quota{})
	for _, id := range []string{"j1", "j2", "j3"} {
		if err := s.Admit(&Ticket{ID: id, Tenant: "t", MemBytes: 1, DiskBytes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tk := range drainSched(t, s, 3) {
		if want := []string{"j1", "j2", "j3"}[i]; tk.ID != want {
			t.Fatalf("position %d: got %s, want %s", i, tk.ID, want)
		}
		s.EndJob(tk, true, tk.DiskBytes)
	}
}

// TestQuotaEnforcement drives both quota kinds over their limits and back.
func TestQuotaEnforcement(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 1 << 30, DiskBytes: 1 << 30},
		Quota{MaxJobsPerTenant: 2, MaxDiskPerTenant: 100})

	a1 := &Ticket{ID: "a1", Tenant: "a", MemBytes: 1, DiskBytes: 40}
	a2 := &Ticket{ID: "a2", Tenant: "a", MemBytes: 1, DiskBytes: 40}
	if err := s.Admit(a1); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(a2); err != nil {
		t.Fatal(err)
	}

	// Third live job: jobs quota.
	var qe *QuotaError
	err := s.Admit(&Ticket{ID: "a3", Tenant: "a", MemBytes: 1, DiskBytes: 10})
	if !errors.As(err, &qe) || qe.Kind != "jobs" {
		t.Fatalf("third job: got %v, want jobs QuotaError", err)
	}
	if status, code := Classify(err); status != 429 || code != CodeQuota {
		t.Fatalf("quota error classifies as %d/%s", status, code)
	}

	// Other tenants are unaffected.
	if err := s.Admit(&Ticket{ID: "b1", Tenant: "b", MemBytes: 1, DiskBytes: 10}); err != nil {
		t.Fatalf("tenant b: %v", err)
	}

	// Retiring one of a's jobs frees the slot, but the disk quota now
	// binds: 40 reserved + 70 requested > 100.
	tk := drainSched(t, s, 1)[0]
	if tk.ID != "a1" {
		t.Fatalf("dispatched %s, want a1", tk.ID)
	}
	s.EndJob(tk, true, tk.DiskBytes)
	err = s.Admit(&Ticket{ID: "a4", Tenant: "a", MemBytes: 1, DiskBytes: 70})
	if !errors.As(err, &qe) || qe.Kind != "disk" {
		t.Fatalf("disk-quota admit: got %v, want disk QuotaError", err)
	}
	if err := s.Admit(&Ticket{ID: "a5", Tenant: "a", MemBytes: 1, DiskBytes: 60}); err != nil {
		t.Fatalf("within disk quota: %v", err)
	}
}

// TestBudgetBoundary pins the admission boundary: exactly-fits is
// admitted, one byte over is rejected with the right resource.
func TestBudgetBoundary(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 1000, DiskBytes: 500}, Quota{})

	var be *BudgetError
	err := s.Admit(&Ticket{ID: "m", Tenant: "t", MemBytes: 1001, DiskBytes: 1})
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("oversized memory: got %v, want memory BudgetError", err)
	}
	if status, code := Classify(err); status != 507 || code != CodeBudget {
		t.Fatalf("budget error classifies as %d/%s", status, code)
	}
	err = s.Admit(&Ticket{ID: "d", Tenant: "t", MemBytes: 1, DiskBytes: 501})
	if !errors.As(err, &be) || be.Resource != "disk" {
		t.Fatalf("oversized disk: got %v, want disk BudgetError", err)
	}

	// Exactly the budget fits.
	fit := &Ticket{ID: "fit", Tenant: "t", MemBytes: 1000, DiskBytes: 500}
	if err := s.Admit(fit); err != nil {
		t.Fatalf("exact fit: %v", err)
	}
	// With all disk reserved, even one more byte is over.
	err = s.Admit(&Ticket{ID: "d2", Tenant: "t", MemBytes: 1, DiskBytes: 1})
	if !errors.As(err, &be) || be.Resource != "disk" {
		t.Fatalf("disk exhausted: got %v, want disk BudgetError", err)
	}

	// Retiring the job frees both resources and admission recovers.
	tk := drainSched(t, s, 1)[0]
	s.EndJob(tk, true, tk.DiskBytes)
	if err := s.Admit(&Ticket{ID: "again", Tenant: "t", MemBytes: 1000, DiskBytes: 500}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestMemoryGatesDispatch checks a job admitted within the total budget
// waits for free memory, and strict head-of-line order holds: a big job
// at the head blocks a small one behind it (no sneaking past).
func TestMemoryGatesDispatch(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 100, DiskBytes: 1 << 30}, Quota{})
	big1 := &Ticket{ID: "big1", Tenant: "t", MemBytes: 80, DiskBytes: 1}
	big2 := &Ticket{ID: "big2", Tenant: "t", MemBytes: 80, DiskBytes: 1}
	small := &Ticket{ID: "small", Tenant: "t", MemBytes: 10, DiskBytes: 1}
	for _, tk := range []*Ticket{big1, big2, small} {
		if err := s.Admit(tk); err != nil {
			t.Fatal(err)
		}
	}
	got := drainSched(t, s, 1)[0]
	if got.ID != "big1" {
		t.Fatalf("dispatched %s first, want big1", got.ID)
	}
	// big2 does not fit while big1 runs, and small must NOT jump the line.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if tk, err := s.Next(ctx); err == nil {
		t.Fatalf("dispatched %s while blocked, want timeout", tk.ID)
	}
	s.EndJob(big1, true, big1.DiskBytes)
	if got := drainSched(t, s, 2); got[0].ID != "big2" || got[1].ID != "small" {
		t.Fatalf("after release got %s,%s want big2,small", got[0].ID, got[1].ID)
	}
}

// TestCancelQueued removes a queued ticket and checks its reservations
// are returned and dispatch skips it.
func TestCancelQueued(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 1 << 20, DiskBytes: 1000}, Quota{})
	for _, id := range []string{"j1", "j2", "j3"} {
		if err := s.Admit(&Ticket{ID: id, Tenant: "t", MemBytes: 1, DiskBytes: 300}); err != nil {
			t.Fatal(err)
		}
	}
	tk := s.CancelQueued("j2")
	if tk == nil || tk.ID != "j2" {
		t.Fatalf("CancelQueued returned %v", tk)
	}
	s.EndJob(tk, false, tk.DiskBytes)
	if st := s.Stats(); st.FreeDisk != 1000-600 {
		t.Fatalf("free disk %d after cancel, want 400", st.FreeDisk)
	}
	if got := drainSched(t, s, 2); got[0].ID != "j1" || got[1].ID != "j3" {
		t.Fatalf("dispatched %s,%s want j1,j3", got[0].ID, got[1].ID)
	}
	if s.CancelQueued("j2") != nil {
		t.Fatal("second CancelQueued found the removed ticket")
	}
	if s.CancelQueued("nope") != nil {
		t.Fatal("CancelQueued invented a ticket")
	}
}

// TestSchedulerClose checks Close turns both Admit and Next into
// ErrDraining.
func TestSchedulerClose(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 100, DiskBytes: 100}, Quota{})
	done := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("Next after Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
	if err := s.Admit(&Ticket{ID: "x", Tenant: "t", MemBytes: 1, DiskBytes: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Admit after Close: %v", err)
	}
}

// TestReadmitBypassesChecks checks recovery readmission ignores quotas
// and budgets — durable work must never be orphaned by a shrunk config.
func TestReadmitBypassesChecks(t *testing.T) {
	s := NewScheduler(Budget{MemoryBytes: 100, DiskBytes: 100}, Quota{MaxJobsPerTenant: 1})
	s.Readmit(&Ticket{ID: "r1", Tenant: "t", MemBytes: 50, DiskBytes: 90})
	s.Readmit(&Ticket{ID: "r2", Tenant: "t", MemBytes: 50, DiskBytes: 90}) // over quota AND over disk
	got := drainSched(t, s, 1)
	if got[0].ID != "r1" {
		t.Fatalf("dispatched %s, want r1", got[0].ID)
	}
	if st := s.Stats(); st.FreeDisk != 100-180 {
		t.Fatalf("free disk %d, want -80 (readmission may run negative)", st.FreeDisk)
	}
}
