package jobs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"balancesort"
)

// TestEmitServerBench writes the job-server load measurement to
// BENCH_server.json at the repository root: a burst of jobs from three
// weighted tenants through a bounded worker pool, reporting throughput
// (jobs/s) and the submit-to-done latency distribution (p50/p99). Gated
// on EMIT_BENCH so the ordinary test run stays fast and side-effect free;
// CI sets the variable.
func TestEmitServerBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_server.json")
	}
	const (
		jobsPerTenant = 8
		records       = 6000
		workers       = 4
	)
	tenants := []string{"alpha", "beta", "gamma"}

	srv, err := New(Options{
		DataDir: t.TempDir(), Workers: workers, Logf: t.Logf,
		TenantWeights: map[string]int{"alpha": 1, "beta": 2, "gamma": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	in := balancesort.NewWorkload(balancesort.Zipf, records, 21)
	path := filepath.Join(dir, "in.bin")
	if err := balancesort.WriteRecordFile(path, in); err != nil {
		t.Fatal(err)
	}
	input, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Burst-submit everything, then wait each job to done, measuring
	// per-job submit→done wall time.
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for _, tenant := range tenants {
		for i := 0; i < jobsPerTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				t0 := time.Now()
				st := submitUpload(t, ts.URL, tenant, matrixQuery, input)
				waitState(t, ts.URL, tenant, st.ID, StateDone, 5*time.Minute)
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}(tenant)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	total := len(latencies)
	pct := func(p float64) float64 {
		i := int(p * float64(total-1))
		return latencies[i].Seconds()
	}

	out := struct {
		Benchmark  string  `json:"benchmark"`
		Jobs       int     `json:"jobs"`
		Tenants    int     `json:"tenants"`
		Workers    int     `json:"workers"`
		RecordsPer int     `json:"records_per_job"`
		Seconds    float64 `json:"seconds"`
		JobsPerSec float64 `json:"jobs_per_sec"`
		P50Seconds float64 `json:"submit_to_done_p50_seconds"`
		P99Seconds float64 `json:"submit_to_done_p99_seconds"`
		MaxSeconds float64 `json:"submit_to_done_max_seconds"`
		RecsPerSec float64 `json:"records_per_sec"`
	}{
		Benchmark: "server_load", Jobs: total, Tenants: len(tenants), Workers: workers,
		RecordsPer: records, Seconds: elapsed.Seconds(),
		JobsPerSec: float64(total) / elapsed.Seconds(),
		P50Seconds: pct(0.50), P99Seconds: pct(0.99),
		MaxSeconds: latencies[total-1].Seconds(),
		RecsPerSec: float64(total*records) / elapsed.Seconds(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("..", "..", "BENCH_server.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_server.json: %d jobs in %.2fs (%.1f jobs/s, p50 %.3fs, p99 %.3fs)",
		total, elapsed.Seconds(), out.JobsPerSec, out.P50Seconds, out.P99Seconds)
}
