package jobs

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Job states, as persisted in manifests and reported by the API.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// SortParams is the per-job engine geometry, chosen at submission.
type SortParams struct {
	Disks     int  `json:"disks"`
	BlockSize int  `json:"block_size"`
	Memory    int  `json:"memory"`
	Buckets   int  `json:"buckets,omitempty"`
	Engine    bool `json:"engine"`
	// SortEngine picks the sort engine for the job: "auto" consults the
	// cost-model planner, "" means balancesort. (Engine above is the disk
	// I/O concurrency toggle, kept for wire compatibility.)
	SortEngine string `json:"sort_engine,omitempty"`
	// Cluster runs the job on the server's configured worker cluster
	// (Options.Cluster) instead of the local file-backed engine. The
	// coordinator journal lives in the job's scratch directory, so the job
	// survives a server crash-restart via the cluster resume path.
	Cluster bool `json:"cluster,omitempty"`
}

// Manifest is the durable record of one job — everything a restarted
// server needs to carry the job forward (or keep serving its output).
// One checksummed manifest.json lives in each job's directory; the pass
// journal inside scratch/ holds the sort's own resumable state.
type Manifest struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Weight int    `json:"weight"`
	Seq    int64  `json:"seq"` // admission order, preserved across restarts

	// LocalInput is the server-local input path for path-submitted jobs;
	// empty means the input was uploaded into the job directory.
	LocalInput string `json:"local_input,omitempty"`
	InputBytes int64  `json:"input_bytes"`
	Records    int    `json:"records"`

	// MemBytes, DiskBytes, and RetainBytes are the admission reservations:
	// memory held while running, disk held from admission, and the disk
	// still held after the job completes (the sorted output).
	MemBytes    int64 `json:"mem_bytes"`
	DiskBytes   int64 `json:"disk_bytes"`
	RetainBytes int64 `json:"retain_bytes"`

	Params SortParams `json:"params"`

	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`

	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`

	// Result summary for done jobs.
	IOs        int64 `json:"ios,omitempty"`
	SortPasses int   `json:"sort_passes,omitempty"`
	// Resumes counts crash-restart resumptions of this job.
	Resumes int `json:"resumes,omitempty"`
}

const manifestName = "manifest.json"

// manifestEnvelope wraps the manifest payload with a CRC32C over its raw
// bytes, so a torn or bit-flipped manifest is detected on recovery rather
// than trusted.
type manifestEnvelope struct {
	CRC      uint32          `json:"crc"`
	Manifest json.RawMessage `json:"manifest"`
}

var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteManifest durably replaces dir's manifest: marshal, checksum, write
// to a temp file, fsync, rename. A crash leaves either the old manifest
// or the new one, never a torn mix.
func WriteManifest(dir string, m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	env, err := json.Marshal(manifestEnvelope{CRC: crc32.Checksum(payload, manifestCRC), Manifest: payload})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(env, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// ReadManifest loads and verifies dir's manifest. A missing file returns
// os.ErrNotExist; a checksum mismatch is an explicit error — recovery
// quarantines such jobs instead of acting on garbage.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var env manifestEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("jobs: manifest in %s unreadable: %w", dir, err)
	}
	if got := crc32.Checksum(env.Manifest, manifestCRC); got != env.CRC {
		return nil, fmt.Errorf("jobs: manifest in %s corrupt: checksum %08x, payload hashes to %08x", dir, env.CRC, got)
	}
	var m Manifest
	if err := json.Unmarshal(env.Manifest, &m); err != nil {
		return nil, fmt.Errorf("jobs: manifest in %s corrupt: %w", dir, err)
	}
	return &m, nil
}
