package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"balancesort/internal/cluster"
	"balancesort/internal/diskio"
	"balancesort/internal/pdm"
)

// TestClassifyTable drives every row of the error → (status, code)
// mapping, with each typed error buried under two layers of %w wrapping
// the way real call chains deliver them.
func TestClassifyTable(t *testing.T) {
	wrap := func(err error) error {
		return fmt.Errorf("serve job: %w", fmt.Errorf("sort pass 3: %w", err))
	}
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"nil", nil, http.StatusOK, ""},
		{"not found", ErrNotFound, http.StatusNotFound, CodeNotFound},
		{"not done", wrap(ErrNotDone), http.StatusConflict, CodeNotDone},
		{"draining", wrap(ErrDraining), http.StatusServiceUnavailable, CodeDraining},
		{"bad request", fmt.Errorf("tenant %q: %w", "x y", ErrBadRequest), http.StatusBadRequest, CodeBadRequest},
		{"quota", wrap(&QuotaError{Tenant: "a", Kind: "jobs", Limit: 2, Used: 2, Need: 1}), http.StatusTooManyRequests, CodeQuota},
		{"budget", wrap(&BudgetError{Resource: "disk", Need: 10, Avail: 5, Budget: 8}), http.StatusInsufficientStorage, CodeBudget},
		{"corrupt block", wrap(&pdm.CorruptBlockError{Disk: 2, Block: 7, Want: 1, Got: 2}), http.StatusUnprocessableEntity, CodeCorruptInput},
		{"truncated disk", wrap(&pdm.TruncatedDiskError{Disk: 1, Path: "d1.bin", WantBlocks: 9}), http.StatusUnprocessableEntity, CodeCorruptInput},
		{"disk failed", wrap(&diskio.DiskFailedError{Disk: 3, Trips: 5, Err: errors.New("io")}), http.StatusServiceUnavailable, CodeDiskFailed},
		{"worker lost", wrap(&cluster.WorkerLostError{Worker: 2, Addr: "10.0.0.2:7101", Err: errors.New("eof")}), http.StatusBadGateway, CodeWorkerLost},
		{"straggler", wrap(&cluster.StragglerError{Worker: 1, Addr: "10.0.0.1:7101", Phase: "local-sort", Budget: 2 * time.Second, Err: errors.New("no progress")}), http.StatusServiceUnavailable, CodeStraggler},
		// A quorum-breaking demotion wraps both typed errors; the straggler
		// classification must win so clients see the retryable latency fault.
		{"degraded by straggler", wrap(&cluster.ClusterDegradedError{Lost: []int{1, 2}, Workers: 4, Quorum: 3,
			Err: &cluster.StragglerError{Worker: 2, Addr: "w2:1", Phase: "exchange", Budget: time.Second, Err: errors.New("flat")}}),
			http.StatusServiceUnavailable, CodeStraggler},
		{"canceled", wrap(context.Canceled), statusClientClosedRequest, CodeCanceled},
		{"deadline", wrap(context.DeadlineExceeded), http.StatusGatewayTimeout, CodeInternal},
		{"unknown", wrap(errors.New("oops")), http.StatusInternalServerError, CodeInternal},
	}
	for _, tc := range cases {
		status, code := Classify(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("%s: Classify = (%d, %q), want (%d, %q)", tc.name, status, code, tc.status, tc.code)
		}
		if got := HTTPStatus(tc.err); got != tc.status {
			t.Errorf("%s: HTTPStatus = %d, want %d", tc.name, got, tc.status)
		}
	}
}

// TestTypedErrorRoundTrip checks the typed errors survive wrapping with
// their fields intact — errors.As must recover the original struct, not
// just the class, so API error bodies can carry the specifics.
func TestTypedErrorRoundTrip(t *testing.T) {
	corrupt := &pdm.CorruptBlockError{Disk: 4, Block: 17, Want: 0xdead, Got: 0xbeef}
	wrapped := fmt.Errorf("pass 2: %w", fmt.Errorf("read bucket 3: %w", corrupt))
	var gotCorrupt *pdm.CorruptBlockError
	if !errors.As(wrapped, &gotCorrupt) {
		t.Fatal("CorruptBlockError lost through wrapping")
	}
	if gotCorrupt.Disk != 4 || gotCorrupt.Block != 17 || gotCorrupt.Want != 0xdead || gotCorrupt.Got != 0xbeef {
		t.Fatalf("CorruptBlockError fields mangled: %+v", gotCorrupt)
	}

	lost := &cluster.WorkerLostError{Worker: 1, Addr: "w1:1", Err: errors.New("conn reset")}
	var gotLost *cluster.WorkerLostError
	if !errors.As(fmt.Errorf("exchange: %w", lost), &gotLost) || gotLost.Worker != 1 {
		t.Fatalf("WorkerLostError lost through wrapping: %+v", gotLost)
	}

	failed := &diskio.DiskFailedError{Disk: 6, Trips: 3, Err: errors.New("dev gone")}
	var gotFailed *diskio.DiskFailedError
	if !errors.As(fmt.Errorf("flush: %w", failed), &gotFailed) || gotFailed.Disk != 6 {
		t.Fatalf("DiskFailedError lost through wrapping: %+v", gotFailed)
	}

	trunc := &pdm.TruncatedDiskError{Disk: 0, Path: "p", WantBlocks: 8, GotBytes: 100, BlockBytes: 1024}
	var gotTrunc *pdm.TruncatedDiskError
	if !errors.As(fmt.Errorf("attach: %w", trunc), &gotTrunc) || gotTrunc.WantBlocks != 8 {
		t.Fatalf("TruncatedDiskError lost through wrapping: %+v", gotTrunc)
	}

	// Sentinels match by identity through wrapping, and distinct sentinels
	// never cross-match.
	if !errors.Is(fmt.Errorf("x: %w", ErrDraining), ErrDraining) {
		t.Fatal("ErrDraining lost through wrapping")
	}
	if errors.Is(fmt.Errorf("x: %w", ErrDraining), ErrNotFound) {
		t.Fatal("ErrDraining matched ErrNotFound")
	}
}
